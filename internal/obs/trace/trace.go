// Package trace is the span layer of the observability stack: a
// zero-cost-when-nil tracer that records the logical phases of a run
// (run → phase → shard → episode → oracle-eval) as spans with parent
// IDs, monotonic timestamps and attribute maps, and exports them as
// Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// # Zero cost when disabled
//
// Like the metrics registry of internal/obs, the disabled state is the
// zero value: a nil *Tracer is valid, StartRoot on it returns a nil
// *Span, StartSpan on a context without a span returns a nil *Span, and
// every method on a nil span is a single predictable-branch no-op that
// never reads the clock. Instrumented code therefore never branches on
// configuration, and a disabled run pays one context lookup per span
// site — at shard/episode granularity, not per trace.
//
// # Emission-only by design
//
// Spans are write-only: nothing in the repository ever reads a span back
// during a run, and recording a span draws no randomness and takes no
// locks on any simulation path. This is what keeps results bit-identical
// with tracing on or off (proved by obs_determinism_test.go at the
// repository root).
//
// # Span hierarchy and context propagation
//
// Parenthood flows through context.Context: StartRoot attaches a root
// span to a context, and every instrumented layer below derives children
// with StartSpan from the context it was handed. Because the repository
// already threads contexts through Session.Run → Env → Oracle →
// evaluate.RunSharded → fault.Campaign for cancellation, the span tree
// follows the call tree with no extra plumbing.
//
// # runtime/trace mirroring
//
// Spans started with StartSpan/StartRoot are mirrored into
// runtime/trace regions (a no-op unless a runtime trace is being
// captured, e.g. via the debug server's /debug/pprof/trace endpoint),
// so CPU profiles and scheduler traces correlate with logical phases.
// Regions must start and end on one goroutine; spans that end on a
// different goroutine than they started on (episode spans, whose Reset
// and terminal Step may run on different runner goroutines) use
// StartSpanCross, which skips the mirror.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	rtrace "runtime/trace"
	"sort"
	"sync"
	"time"
)

// Canonical span names used by the instrumented subsystems. The
// obsreport CLI groups phase latency by these names.
const (
	SpanRun        = "run"         // one CLI invocation
	SpanSession    = "session"     // one training session (explore.Session.Run)
	SpanEpisode    = "episode"     // one RL episode (explore.Env)
	SpanPPOUpdate  = "ppo_update"  // one PPO policy update
	SpanOracleEval = "oracle_eval" // one oracle evaluation (cache hit or miss)
	SpanAssess     = "assess"      // one leakage assessment (evaluate.Engine)
	SpanShard      = "shard"       // one campaign shard (evaluate.RunSharded)
	SpanCollect    = "collect"     // one fault.Campaign trace collection
	SpanTrain      = "train"       // discovery training phase (Discover)
	SpanHarvest    = "harvest"     // abstraction/verification phase (Discover)
	SpanSweep      = "sweep"       // one exhaustive sweep (sweep.Run)
	SpanSweepShard = "sweep_shard" // one cell shard of a sweep
)

// LaneMain is the Chrome "thread" lane of the main control flow; spans
// inherit their parent's lane unless OwnLane or SetLane moves them.
const LaneMain = 0

// laneSpanBase offsets OwnLane lanes above any hand-assigned lane, so a
// span promoted to its own track can never collide with the main lane or
// the per-environment lanes the session assigns.
const laneSpanBase = 1 << 20

// DefaultMaxSpans bounds the in-memory span buffer (~100 B/span). Spans
// past the cap are counted in Dropped instead of recorded, so a runaway
// run degrades to a truncated trace rather than unbounded memory.
const DefaultMaxSpans = 1 << 20

// Tracer accumulates completed spans and writes them out as one Chrome
// trace-event JSON document. It is safe for concurrent use; a nil
// *Tracer is the disabled state.
type Tracer struct {
	mu      sync.Mutex
	events  []chromeEvent
	lanes   map[int64]string
	nextID  uint64
	dropped uint64
	max     int
	epoch   time.Time
	file    *os.File
	closed  bool
}

// chromeEvent is one entry of the trace-event format: a complete ("X")
// duration slice or a metadata ("M") record. Timestamps and durations
// are microseconds; pid/tid place the slice on a track.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format Perfetto accepts (the bare
// array format is also legal, but the object form carries metadata).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// New returns an enabled in-memory tracer; read it back with Export.
func New() *Tracer {
	return &Tracer{
		lanes: map[int64]string{LaneMain: "main"},
		max:   DefaultMaxSpans,
		epoch: time.Now(),
	}
}

// Open creates (or truncates) path and returns a tracer that writes the
// trace document there on Close. An empty path returns a nil tracer
// (the disabled state) and no error, so CLI flag plumbing needs no
// branch.
func Open(path string) (*Tracer, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: opening trace file: %w", err)
	}
	t := New()
	t.file = f
	return t, nil
}

// NameLane labels a Chrome lane (Perfetto renders it as the thread
// name). No-op on a nil tracer.
func (t *Tracer) NameLane(lane int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lanes[lane] = name
	t.mu.Unlock()
}

// Dropped reports how many spans were discarded after the buffer cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one timed region of a run. The zero value and nil are inert;
// spans are not safe for concurrent use (each belongs to one logical
// flow), matching how the instrumented call sites use them.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	lane   int64
	start  time.Duration
	attrs  map[string]any
	region *rtrace.Region
	ended  bool
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span; StartSpan on the
// result derives children of it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartRoot begins a top-level span and returns it along with a context
// carrying it. On a nil tracer both return values are the inputs'
// no-op equivalents (nil span, unchanged context).
func (t *Tracer) StartRoot(ctx context.Context, name string) (*Span, context.Context) {
	if t == nil {
		return nil, ctx
	}
	s := t.newSpan(nil, name, LaneMain)
	s.region = rtrace.StartRegion(ctx, name)
	return s, ContextWithSpan(ctx, s)
}

// StartSpan begins a child of the span carried by ctx and returns it
// along with a context carrying the child. When ctx carries no span
// (tracing disabled) it returns (nil, ctx) without reading the clock.
// The span must End on the goroutine that started it (it is mirrored
// into a runtime/trace region); use StartSpanCross otherwise.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	s := parent.tr.newSpan(parent, name, parent.lane)
	s.region = rtrace.StartRegion(ctx, name)
	return s, ContextWithSpan(ctx, s)
}

// StartSpanCross is StartSpan without the runtime/trace region mirror,
// for spans that may end on a different goroutine than they started on
// (regions require one goroutine; the span record itself does not).
func StartSpanCross(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	s := parent.tr.newSpan(parent, name, parent.lane)
	return s, ContextWithSpan(ctx, s)
}

// newSpan allocates a started span; t must be non-nil.
func (t *Tracer) newSpan(parent *Span, name string, lane int64) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tr: t, id: id, name: name, lane: lane, start: time.Since(t.epoch)}
	if parent != nil {
		s.parent = parent.id
	}
	return s
}

// Tracer returns the tracer that recorded the span (nil on a nil span),
// letting instrumented code reach lane naming without extra plumbing.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tr
}

// SetAttr attaches one key/value to the span. No-op on a nil span.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// SetLane moves the span to a specific Chrome lane (Perfetto track).
// Concurrent siblings must not share a lane, or their slices would
// overlap on one track; sequential reuse is fine.
func (s *Span) SetLane(lane int64) {
	if s != nil {
		s.lane = lane
	}
}

// OwnLane moves the span to a lane derived from its own ID, guaranteeing
// no overlap with any other span. Used for spans whose siblings run
// concurrently with unknown multiplicity (campaign shards).
func (s *Span) OwnLane() {
	if s != nil {
		s.lane = laneSpanBase + int64(s.id)
	}
}

// End completes the span and records it. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if s.region != nil {
		s.region.End()
	}
	dur := time.Since(s.tr.epoch) - s.start
	if dur < 0 {
		dur = 0
	}
	args := make(map[string]any, len(s.attrs)+2)
	for k, v := range s.attrs {
		args[k] = v
	}
	args["span_id"] = s.id
	if s.parent != 0 {
		args["parent_id"] = s.parent
	}
	ev := chromeEvent{
		Name: s.name,
		Cat:  "explorefault",
		Ph:   "X",
		TS:   float64(s.start) / float64(time.Microsecond),
		Dur:  float64(dur) / float64(time.Microsecond),
		PID:  1,
		TID:  s.lane,
		Args: args,
	}
	t := s.tr
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Export writes the accumulated spans as one Chrome trace-event JSON
// document: process/thread metadata first, then every completed span in
// completion order. The tracer stays usable afterwards. No-op (and no
// output) on a nil tracer.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	doc := chromeTrace{DisplayTimeUnit: "ms"}
	lanes := make(map[int64]string, len(t.lanes))
	for lane, name := range t.lanes {
		lanes[lane] = name
	}
	for _, ev := range t.events {
		if _, ok := lanes[ev.TID]; !ok {
			lanes[ev.TID] = fmt.Sprintf("lane %d", ev.TID)
		}
	}
	laneIDs := make([]int64, 0, len(lanes))
	for lane := range lanes {
		laneIDs = append(laneIDs, lane)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: LaneMain,
		Args: map[string]any{"name": "explorefault"},
	})
	for _, lane := range laneIDs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane,
			Args: map[string]any{"name": lanes[lane]},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding trace document: %w", err)
	}
	if dropped > 0 {
		return fmt.Errorf("trace: %d spans dropped past the %d-span buffer cap (trace is truncated)", dropped, t.max)
	}
	return nil
}

// Close writes the trace document to the file given at Open (if any)
// and releases it. Idempotent; no-op (nil error) on a nil tracer or an
// in-memory tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed || t.file == nil {
		t.closed = true
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	f := t.file
	t.file = nil
	t.mu.Unlock()

	werr := t.Export(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
