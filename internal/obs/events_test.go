package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmitterGoldenSchema pins the exact JSONL wire format: envelope key
// order, RFC3339Nano UTC timestamps, 0-based gap-free sequence numbers,
// and alphabetically sorted field keys (encoding/json sorts map keys, so
// the output is reproducible).
func TestEmitterGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	n := 0
	e.SetClock(func() time.Time {
		n++
		return base.Add(time.Duration(n) * 250 * time.Millisecond)
	})

	e.Emit(EventRunStarted, map[string]any{"binary": "faultsim", "cipher": "gift64", "round": 25, "fault_model": "stuck-at-0", "oracle": "sifa"})
	e.Emit(EventCampaignStarted, map[string]any{
		"cipher": "gift64", "round": 25, "pattern": "0f000000f0000000",
		"bits": 8, "samples": 2048, "workers": 4, "batch": true,
		"fault_model": "stuck-at-0",
	})
	e.Emit(EventCampaignFinished, map[string]any{
		"cipher": "gift64", "round": 25, "pattern": "0f000000f0000000",
		"t": 87.5, "leaky": true, "shards": 8, "duration_ms": 12.25,
		"fault_model": "stuck-at-0",
	})
	e.Emit(EventEpisode, map[string]any{
		"episode": 1, "bits": 8, "t": 87.5, "leaky": true, "fault_model": "stuck-at-0",
	})
	e.Emit(EventRunFinished, nil)

	want := strings.Join([]string{
		`{"ts":"2026-08-06T12:00:00.25Z","seq":0,"event":"run_started","fields":{"binary":"faultsim","cipher":"gift64","fault_model":"stuck-at-0","oracle":"sifa","round":25}}`,
		`{"ts":"2026-08-06T12:00:00.5Z","seq":1,"event":"campaign_started","fields":{"batch":true,"bits":8,"cipher":"gift64","fault_model":"stuck-at-0","pattern":"0f000000f0000000","round":25,"samples":2048,"workers":4}}`,
		`{"ts":"2026-08-06T12:00:00.75Z","seq":2,"event":"campaign_finished","fields":{"cipher":"gift64","duration_ms":12.25,"fault_model":"stuck-at-0","leaky":true,"pattern":"0f000000f0000000","round":25,"shards":8,"t":87.5}}`,
		`{"ts":"2026-08-06T12:00:01Z","seq":3,"event":"episode","fields":{"bits":8,"episode":1,"fault_model":"stuck-at-0","leaky":true,"t":87.5}}`,
		`{"ts":"2026-08-06T12:00:01.25Z","seq":4,"event":"run_finished"}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
	if e.Dropped() != 0 {
		t.Errorf("dropped = %d", e.Dropped())
	}
}

// TestNilEmitterIsSafe: a nil emitter is the disabled state.
func TestNilEmitterIsSafe(t *testing.T) {
	var e *Emitter
	e.Emit(EventRunStarted, map[string]any{"x": 1})
	e.SetClock(time.Now)
	if e.Dropped() != 0 {
		t.Error("nil Dropped != 0")
	}
	if err := e.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

// TestEmitterDropsOnFailure: marshal or write failures increment the drop
// counter and never consume sequence numbers, so surviving events stay
// gap-free.
func TestEmitterDropsOnFailure(t *testing.T) {
	e := NewEmitter(errWriter{})
	e.Emit(EventRunStarted, nil)
	e.Emit(EventRunFinished, nil)
	if e.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", e.Dropped())
	}

	var buf bytes.Buffer
	e2 := NewEmitter(&buf)
	e2.SetClock(func() time.Time { return time.Unix(0, 0) })
	e2.Emit("bad", map[string]any{"ch": make(chan int)}) // unmarshalable
	e2.Emit("good", nil)
	if e2.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", e2.Dropped())
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 0 || ev.Event != "good" {
		t.Errorf("surviving event = %+v, want seq 0 event good", ev)
	}
}

// TestEmitterStatsOnClose: Close appends a final emitter_stats line
// reporting emitted and dropped counts, exactly once, and events after
// Close count as drops instead of vanishing silently.
func TestEmitterStatsOnClose(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	e.SetClock(func() time.Time { return time.Unix(0, 0).UTC() })
	e.Emit(EventRunStarted, nil)
	e.Emit("bad", map[string]any{"ch": make(chan int)}) // dropped
	e.Emit(EventRunFinished, nil)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	e.Emit(EventEpisode, nil) // after Close: dropped, not written

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (two events + one stats):\n%s", len(lines), buf.String())
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != EventEmitterStats {
		t.Fatalf("final event = %q, want %q", last.Event, EventEmitterStats)
	}
	if got := last.Fields["emitted"]; got != float64(2) {
		t.Errorf("emitted = %v, want 2", got)
	}
	if got := last.Fields["dropped"]; got != float64(1) {
		t.Errorf("dropped = %v, want 1", got)
	}
	if e.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2 (one marshal failure, one post-Close)", e.Dropped())
	}
}

// TestEmitterMirrorsDrops: a registered counter tracks drops live.
func TestEmitterMirrorsDrops(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("obs.events_dropped_total")
	e := NewEmitter(errWriter{})
	e.MirrorDrops(c)
	e.Emit(EventRunStarted, nil)
	e.Emit(EventRunFinished, nil)
	if c.Value() != 2 {
		t.Errorf("mirror counter = %d, want 2", c.Value())
	}
	if e.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", e.Dropped())
	}
}

// TestEmitterConcurrentEmit: concurrent emitters produce whole lines with
// unique sequence numbers (run under -race).
func TestEmitterConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	e := NewEmitter(&buf)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Emit(EventEpisode, map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*per {
		t.Fatalf("lines = %d, want %d", len(lines), goroutines*per)
	}
	seen := make(map[uint64]bool, len(lines))
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
