package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCanonicalLabelKey(t *testing.T) {
	cases := []struct {
		names, values []string
		want          string
	}{
		{nil, nil, ""},
		{[]string{}, []string{"ignored"}, ""},
		{[]string{"tenant"}, []string{"t1"}, `{tenant="t1"}`},
		// Pairs sort by label name regardless of declaration order.
		{[]string{"tenant", "kind"}, []string{"t1", "sweep"}, `{kind="sweep",tenant="t1"}`},
		{[]string{"kind", "tenant"}, []string{"sweep", "t1"}, `{kind="sweep",tenant="t1"}`},
		// Missing values read as empty strings.
		{[]string{"a", "b"}, []string{"x"}, `{a="x",b=""}`},
		// Label names pass through PromName; values are escaped.
		{[]string{"bad-name"}, []string{`q"\` + "\n"}, `{bad_name="q\"\\\n"}`},
	}
	for _, tc := range cases {
		if got := CanonicalLabelKey(tc.names, tc.values); got != tc.want {
			t.Errorf("CanonicalLabelKey(%v, %v) = %q, want %q", tc.names, tc.values, got, tc.want)
		}
	}
}

// TestNilVecNoOps: a nil registry hands out nil families, With on a nil
// family hands out nil children, and every method on those no-ops. This
// is the disabled state every instrumented call site relies on.
func TestNilVecNoOps(t *testing.T) {
	var r *Registry
	r.CounterVec("c", "l").With("v").Add(3)
	r.CounterVec("c", "l").With("v").Inc()
	r.GaugeVec("g", "l").With("v").Set(1)
	r.HistogramVec("h", LatencyBuckets, "l").With("v").Observe(0.5)

	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Add(1)
	hv.With("x").Observe(1)
}

// TestVecChildStability: With returns the same child for equivalent
// label sets (even given in a different declaration), and distinct
// children for distinct sets.
func TestVecChildStability(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs", "tenant", "kind")
	a := v.With("t1", "sweep")
	b := v.With("t1", "sweep")
	if a != b {
		t.Fatal("With returned distinct children for the same label values")
	}
	if v.With("t2", "sweep") == a {
		t.Fatal("distinct label values shared a child")
	}
	// Re-looking up the family ignores later label names, like Histogram
	// bounds on re-lookup.
	if r.CounterVec("jobs", "other") != v {
		t.Fatal("re-lookup created a second family")
	}

	a.Add(2)
	b.Inc()
	s := r.Snapshot()
	fam := s.CounterVecs["jobs"]
	if got := fam.Series[`{kind="sweep",tenant="t1"}`]; got != 3 {
		t.Fatalf("series value = %d, want 3 (both handles reach one child)", got)
	}
	if len(fam.Labels) != 2 || fam.Labels[0] != "tenant" || fam.Labels[1] != "kind" {
		t.Fatalf("snapshot labels = %v", fam.Labels)
	}
}

// TestVecSnapshotKinds covers gauge and histogram families end to end
// through Snapshot.
func TestVecSnapshotKinds(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("depth", "tenant").With("t1").Set(4)
	r.GaugeVec("depth", "tenant").With("t2").Set(0)
	h := r.HistogramVec("lat", []float64{1, 10}, "tenant")
	h.With("t1").Observe(0.5)
	h.With("t1").Observe(5)

	s := r.Snapshot()
	if got := s.GaugeVecs["depth"].Series[`{tenant="t1"}`]; got != 4 {
		t.Errorf("gauge series = %v, want 4", got)
	}
	if _, ok := s.GaugeVecs["depth"].Series[`{tenant="t2"}`]; !ok {
		t.Error("explicit zero gauge series missing from snapshot")
	}
	hs := s.HistogramVecs["lat"].Series[`{tenant="t1"}`]
	if hs.Count != 2 || hs.Counts[0] != 1 || hs.Counts[1] != 1 {
		t.Errorf("histogram series = %+v", hs)
	}
}

// TestFoldAttribution: folding per-source snapshots under labels makes
// the unlabeled totals the exact sum of the labeled series — the
// invariant the job server's fleet /metrics view is built on.
func TestFoldAttribution(t *testing.T) {
	mk := func(traces uint64, depth float64, obsv ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("traces_total").Add(traces)
		r.Gauge("depth").Set(depth)
		h := r.Histogram("lat", []float64{1})
		for _, v := range obsv {
			h.Observe(v)
		}
		return r.Snapshot()
	}

	var dst Snapshot
	dst = (*Registry)(nil).Snapshot() // allocated empty maps
	names := []string{"tenant", "kind"}
	Fold(&dst, mk(3, 7, 0.5), names, []string{"t1", "sweep"})
	Fold(&dst, mk(5, 2, 0.5, 3), names, []string{"t2", "assess"})
	Fold(&dst, mk(4, 1), names, []string{"t1", "sweep"}) // same series again

	if dst.Counters["traces_total"] != 12 {
		t.Fatalf("unlabeled total = %d, want 12", dst.Counters["traces_total"])
	}
	fam := dst.CounterVecs["traces_total"]
	var sum uint64
	for _, v := range fam.Series {
		sum += v
	}
	if sum != dst.Counters["traces_total"] {
		t.Fatalf("labeled series sum %d != unlabeled total %d", sum, dst.Counters["traces_total"])
	}
	if fam.Series[`{kind="sweep",tenant="t1"}`] != 7 {
		t.Errorf("t1 series = %d, want 7", fam.Series[`{kind="sweep",tenant="t1"}`])
	}

	// Gauges: unlabeled keeps the first source's level (copy-if-absent);
	// each label set keeps its own level.
	if dst.Gauges["depth"] != 7 {
		t.Errorf("unlabeled gauge = %v, want first-folded 7", dst.Gauges["depth"])
	}
	if dst.GaugeVecs["depth"].Series[`{kind="assess",tenant="t2"}`] != 2 {
		t.Errorf("labeled gauge = %v, want 2", dst.GaugeVecs["depth"].Series[`{kind="assess",tenant="t2"}`])
	}

	// Histograms: bucket-wise sums, labeled and unlabeled. Three
	// observations total: 0.5 from t1, {0.5, 3} from t2, none from the
	// third fold.
	uh := dst.Histograms["lat"]
	if uh.Count != 3 || uh.Counts[0] != 2 || uh.Counts[1] != 1 {
		t.Errorf("unlabeled histogram = %+v", uh)
	}
	lh := dst.HistogramVecs["lat"].Series[`{kind="sweep",tenant="t1"}`]
	if lh.Count != 1 || lh.Counts[0] != 1 {
		t.Errorf("t1 histogram series = %+v", lh)
	}
}

// TestFoldCarriesVecFamilies: folding an already-folded snapshot (the
// server's accumulated history) into a fresh destination keeps its
// labeled series as-is instead of re-attributing or dropping them.
func TestFoldCarriesVecFamilies(t *testing.T) {
	var hist Snapshot
	hist = (*Registry)(nil).Snapshot()
	src := NewRegistry()
	src.Counter("c").Add(2)
	src.Histogram("h", []float64{1}).Observe(0.5)
	src.Gauge("g").Set(9)
	Fold(&hist, src.Snapshot(), []string{"tenant"}, []string{"t1"})

	var dst Snapshot
	dst = (*Registry)(nil).Snapshot()
	Fold(&dst, hist, nil, nil) // unlabeled fold of a labeled snapshot

	if dst.Counters["c"] != 2 {
		t.Errorf("plain counter = %d", dst.Counters["c"])
	}
	if dst.CounterVecs["c"].Series[`{tenant="t1"}`] != 2 {
		t.Errorf("carried counter series = %d, want 2", dst.CounterVecs["c"].Series[`{tenant="t1"}`])
	}
	if dst.GaugeVecs["g"].Series[`{tenant="t1"}`] != 9 {
		t.Errorf("carried gauge series = %v, want 9", dst.GaugeVecs["g"].Series[`{tenant="t1"}`])
	}
	if hs := dst.HistogramVecs["h"].Series[`{tenant="t1"}`]; hs.Count != 1 {
		t.Errorf("carried histogram series = %+v", hs)
	}

	// Folding the same history twice doubles counter series (they sum).
	Fold(&dst, hist, nil, nil)
	if dst.CounterVecs["c"].Series[`{tenant="t1"}`] != 4 {
		t.Errorf("re-folded counter series = %d, want 4", dst.CounterVecs["c"].Series[`{tenant="t1"}`])
	}
}

// TestFoldMismatchedBounds: histograms with differing bucket layouts are
// not addable; the destination series must stay untouched rather than
// being corrupted bucket-by-bucket.
func TestFoldMismatchedBounds(t *testing.T) {
	var dst Snapshot
	dst = (*Registry)(nil).Snapshot()
	a := NewRegistry()
	a.Histogram("h", []float64{1, 2}).Observe(0.5)
	Fold(&dst, a.Snapshot(), nil, nil)

	b := NewRegistry()
	b.Histogram("h", []float64{5}).Observe(0.5)
	Fold(&dst, b.Snapshot(), nil, nil)

	h := dst.Histograms["h"]
	if len(h.Bounds) != 2 || h.Count != 1 {
		t.Fatalf("mismatched-bounds fold corrupted dst: %+v", h)
	}
}

// TestVecConcurrentResolve hammers child creation and updates from many
// goroutines; run under -race this pins the locking of the family maps.
func TestVecConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 16
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%4)
			for j := 0; j < 200; j++ {
				r.CounterVec("ops", "tenant").With(tenant).Inc()
				r.GaugeVec("level", "tenant").With(tenant).Set(float64(j))
				r.HistogramVec("lat", []float64{1}, "tenant").With(tenant).Observe(0.5)
				if j%50 == 0 {
					_ = r.Snapshot() // concurrent readers are safe too
				}
			}
		}(i)
	}
	wg.Wait()

	s := r.Snapshot()
	var total uint64
	for _, v := range s.CounterVecs["ops"].Series {
		total += v
	}
	if want := uint64(workers * 200); total != want {
		t.Fatalf("lost updates: counted %d, want %d", total, want)
	}
	if got := len(s.CounterVecs["ops"].Series); got != 4 {
		t.Fatalf("series count = %d, want 4", got)
	}
}
