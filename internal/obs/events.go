package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event kinds emitted by the instrumented subsystems. Every event is one
// JSON object per line with the fixed envelope {"ts", "seq", "event"} plus
// kind-specific fields under "fields"; see EXAMPLES under examples/ and
// the schema golden test for the exact shapes.
const (
	// EventRunStarted / EventRunFinished bracket one CLI invocation.
	EventRunStarted  = "run_started"
	EventRunFinished = "run_finished"
	// EventCampaignStarted / EventCampaignFinished bracket one fault
	// campaign (a full sharded assessment of one pattern).
	EventCampaignStarted  = "campaign_started"
	EventCampaignFinished = "campaign_finished"
	// EventOracleEval records one oracle evaluation, including whether it
	// was served from the memoization cache.
	EventOracleEval = "oracle_eval"
	// EventEpisode records one finished RL training episode.
	EventEpisode = "episode"
	// EventPPOUpdate records one PPO policy update.
	EventPPOUpdate = "ppo_update"
	// EventSessionStarted / EventSessionFinished bracket one discovery
	// training session.
	EventSessionStarted  = "session_started"
	EventSessionFinished = "session_finished"
	// EventModelAbstracted records one abstracted fault model entering
	// verification; EventModelVerified its offline verification verdict.
	EventModelAbstracted = "model_abstracted"
	EventModelVerified   = "model_verified"
	// EventCheckpointSaved records one checkpoint write (episode count and
	// path); EventCheckpointResumed records a session restored from one.
	EventCheckpointSaved   = "checkpoint_saved"
	EventCheckpointResumed = "checkpoint_resumed"
	// EventSweepStarted / EventSweepFinished bracket one exhaustive sweep
	// (internal/sweep); EventSweepCell records one assessed cell with its
	// round, positions, model and t-statistic.
	EventSweepStarted  = "sweep_started"
	EventSweepCell     = "sweep_cell"
	EventSweepFinished = "sweep_finished"
	// Job lifecycle events of the campaign server (internal/server):
	// submitted on POST /jobs, started when a worker picks the job up
	// (fields include "resumes" when a daemon restart re-ran it),
	// finished with the terminal state, cancelled on DELETE /jobs/{id}.
	EventJobSubmitted = "job_submitted"
	EventJobStarted   = "job_started"
	EventJobFinished  = "job_finished"
	EventJobCancelled = "job_cancelled"
	// EventJobUsage records one job's resource accounting (wall/CPU/queue
	// seconds, work counters, peak heap delta) plus its attribution labels
	// (tenant, kind, cipher, fault_model), written into the per-job event
	// log at every attempt end so fleet reports can be built from the log
	// directory alone, with no access to the daemon's job store.
	EventJobUsage = "job_usage"
	// EventEmitterStats is the final line the emitter writes about itself
	// at Close: how many events were emitted and how many were silently
	// dropped to marshal or write errors. Analysis tools (obsreport) use
	// it to distinguish "no episodes happened" from "episode events were
	// lost", which read identically without it.
	EventEmitterStats = "emitter_stats"
)

// Event is the JSONL envelope: a wall-clock timestamp, a process-local
// monotonic sequence number (total order even when timestamps collide),
// the event kind, and free-form fields.
type Event struct {
	TS     string         `json:"ts"`
	Seq    uint64         `json:"seq"`
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Emitter writes structured run events as JSON Lines. It is safe for
// concurrent use; a nil *Emitter is the disabled state and every method
// no-ops, so instrumented code never branches on configuration. Marshal
// or write failures increment a drop counter instead of failing the run —
// observability must not turn a healthy campaign into a failed one.
type Emitter struct {
	mu      sync.Mutex
	w       io.Writer
	closer  io.Closer
	seq     uint64
	dropped uint64
	drops   *Counter // optional live mirror of the drop count
	closed  bool
	now     func() time.Time
}

// NewEmitter wraps an io.Writer. The caller keeps ownership of w.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: w, now: time.Now}
}

// OpenEmitter creates (or truncates) a JSONL file and returns an emitter
// owning it; Close releases the file.
func OpenEmitter(path string) (*Emitter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: opening events file: %w", err)
	}
	e := NewEmitter(f)
	e.closer = f
	return e, nil
}

// AppendEmitter opens (or creates) a JSONL file for appending and
// returns an emitter owning it. A resumed run uses it to continue the
// event log of its interrupted predecessor instead of erasing it; the
// sequence counter restarts at 0 for each process, so consumers ordering
// across restarts must use (ts, seq), not seq alone.
func AppendEmitter(path string) (*Emitter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening events file: %w", err)
	}
	e := NewEmitter(f)
	e.closer = f
	return e, nil
}

// SetClock replaces the timestamp source (golden tests pin it).
// No-op on a nil emitter.
func (e *Emitter) SetClock(now func() time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.now = now
	e.mu.Unlock()
}

// MirrorDrops registers a metrics counter that tracks the drop count
// live, so an operator watching /metrics sees event loss while the run
// is still going rather than only in the final emitter_stats line.
// No-op on a nil emitter; a nil counter clears the mirror.
func (e *Emitter) MirrorDrops(c *Counter) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.drops = c
	e.mu.Unlock()
}

// Emit writes one event line. No-op on a nil emitter. Events emitted
// after Close are counted as drops: the writer may be gone, and losing
// them silently is exactly the failure mode emitter_stats exists to
// expose.
func (e *Emitter) Emit(event string, fields map[string]any) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.drop()
		return
	}
	e.emitLocked(event, fields)
}

// emitLocked writes one event line; the caller holds e.mu.
func (e *Emitter) emitLocked(event string, fields map[string]any) {
	ev := Event{
		TS:     e.now().UTC().Format(time.RFC3339Nano),
		Seq:    e.seq,
		Event:  event,
		Fields: fields,
	}
	line, err := json.Marshal(ev)
	if err != nil {
		e.drop()
		return
	}
	line = append(line, '\n')
	if _, err := e.w.Write(line); err != nil {
		e.drop()
		return
	}
	e.seq++
}

// drop records one lost event; the caller holds e.mu.
func (e *Emitter) drop() {
	e.dropped++
	e.drops.Inc()
}

// Dropped returns how many events were lost to marshal or write errors.
func (e *Emitter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Close writes a final emitter_stats event summarizing how many events
// were emitted and how many were dropped, then releases the underlying
// file when the emitter owns one. The stats line makes drops visible in
// the log itself: a consumer that sees no emitter_stats knows the run
// ended abnormally, and one that sees dropped > 0 knows the log is
// incomplete. Close is idempotent; no-op (nil error) on a nil emitter.
func (e *Emitter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.emitLocked(EventEmitterStats, map[string]any{
		"emitted": e.seq,
		"dropped": e.dropped,
	})
	e.closed = true
	if e.closer == nil {
		return nil
	}
	c := e.closer
	e.closer = nil
	return c.Close()
}
