package obs

import (
	"math"
	"sync"
	"testing"
)

// TestNilRegistryIsZeroCostAndSafe: the disabled state is a nil registry;
// every lookup and every instrument method must be a safe no-op.
func TestNilRegistryIsZeroCostAndSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Inc()
	c.Add(10)
	g.Set(1.5)
	g.Add(2.5)
	h.Observe(0.1)
	if d := h.Start().Stop(); d != 0 {
		t.Errorf("inert timer returned %v, want 0", d)
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestRegistryHandleIdentity: repeated lookups return the same instrument,
// so callers can resolve handles once and share them.
func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter lookups not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("gauge lookups not idempotent")
	}
	if r.Histogram("x", LatencyBuckets) != r.Histogram("x", nil) {
		t.Error("histogram lookups not idempotent (bounds must be ignored after creation)")
	}
}

// TestHistogramBucketBoundaries pins the bucket convention: counts[i]
// observes v <= bounds[i], values above the last bound land in the
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{
		0.5,          // below first bound -> bucket 0
		1,            // exactly on a bound is inclusive -> bucket 0
		1.0000001, 9, // bucket 1
		10.5, // bucket 2
		1e9,  // overflow bucket
		100,  // bucket 2 (inclusive upper bound)
		-3,   // negative observations still land in bucket 0
	} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	wantCounts := []uint64{3, 2, 2, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("total count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 9 + 10.5 + 1e9 + 100 - 3
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if got := s.Mean(); got != wantSum/8 {
		t.Errorf("mean = %v, want %v", got, wantSum/8)
	}
}

// TestExpBuckets: the helper produces ascending exponential bounds.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(10e-6, 2.5, 10)
	if len(b) != 10 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 10e-6 {
		t.Errorf("b[0] = %v", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not ascending at %d: %v", i, b)
		}
		if math.Abs(b[i]/b[i-1]-2.5) > 1e-12 {
			t.Errorf("growth factor at %d = %v", i, b[i]/b[i-1])
		}
	}
}

// TestConcurrentWritersSnapshotConsistency hammers one registry from many
// goroutines while a reader snapshots it; with deterministic totals at the
// end. Run under -race this is also the data-race proof for the atomics.
func TestConcurrentWritersSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000

	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent snapshot reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			// A mid-flight snapshot must never over-report: per-bucket
			// counts are read before the total, so sum(buckets) >= count
			// would only break if increments were lost or misordered.
			for name, h := range s.Histograms {
				var buckets uint64
				for _, c := range h.Counts {
					buckets += c
				}
				if buckets < h.Count {
					t.Errorf("%s: bucket sum %d < count %d", name, buckets, h.Count)
					return
				}
			}
		}
	}()

	writerWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWG.Done()
			c := r.Counter("writes")
			g := r.Gauge("adds")
			h := r.Histogram("values", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / perWriter)
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	s := r.Snapshot()
	if got := s.Counters["writes"]; got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := s.Gauges["adds"]; got != writers*perWriter {
		t.Errorf("gauge = %v, want %d (CAS add must not lose updates)", got, writers*perWriter)
	}
	h := s.Histograms["values"]
	if h.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", h.Count, writers*perWriter)
	}
	var buckets uint64
	for _, c := range h.Counts {
		buckets += c
	}
	if buckets != h.Count {
		t.Errorf("final bucket sum %d != count %d", buckets, h.Count)
	}
}

// TestGaugeSetAndValue round-trips float values exactly (bit storage).
func TestGaugeSetAndValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	for _, v := range []float64{0, 1.5, -2.25, math.Inf(1), 1e-300} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Errorf("Set(%v) read back %v", v, got)
		}
	}
	g.Set(0)
	g.Add(0.1)
	g.Add(0.2)
	want := float64(0.1) + float64(0.2) // runtime addition, not constant folding
	if got := g.Value(); got != want {
		t.Errorf("Add accumulation = %v, want %v", got, want)
	}
}
