// aes_diagonal walks the AES-128 story of the paper without the RL loop:
// it assesses the classic fault models (bit, byte, diagonal of Saha et
// al.) at round 8 with first- and second-order t-tests (the Table I
// contrast), shows that patterns spanning two diagonals are *not*
// exploitable (the boundary the RL agent discovers), and prints the
// round-by-round propagation profile of the diagonal model (Fig. 1's
// linear pattern appearing at the round-10 input).
//
// Run with:
//
//	go run ./examples/aes_diagonal
package main

import (
	"flag"
	"fmt"
	"log"

	explorefault "repro"
)

func main() {
	samples := flag.Int("samples", 2048, "plaintexts per t-test")
	seed := flag.Uint64("seed", 7, "experiment seed")
	flag.Parse()

	models := []struct {
		name    string
		pattern explorefault.Pattern
	}{
		{"bit fault (bit 77)", explorefault.PatternFromBits(128, 77)},
		{"byte fault (byte 0)", explorefault.PatternFromGroups(128, 8, 0)},
		{"diagonal D2 {2,7,8,13}", explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)},
		{"two diagonals (8 bytes)", explorefault.PatternFromGroups(128, 8, 0, 5, 10, 15, 2, 7, 8, 13)},
		{"full state (16 bytes)", explorefault.PatternFromGroups(128, 8,
			0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)},
	}

	fmt.Println("AES-128, fault at round-8 input, observed at the round-10 input (lag 2)")
	fmt.Printf("%-28s %12s %12s %s\n", "fault model", "order-1 t", "order-2 t", "exploitable")
	for _, m := range models {
		o1, err := explorefault.Assess(m.pattern, explorefault.AssessConfig{
			Cipher: "aes128", Round: 8, FixedOrder: 1, Samples: *samples, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		o2, err := explorefault.Assess(m.pattern, explorefault.AssessConfig{
			Cipher: "aes128", Round: 8, FixedOrder: 2, Samples: *samples, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		full, err := explorefault.Assess(m.pattern, explorefault.AssessConfig{
			Cipher: "aes128", Round: 8, Samples: *samples, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.2f %12.2f %v\n", m.name, o1.T, o2.T, full.Leaky)
	}

	fmt.Println("\npropagation profile of the diagonal model (fault at round 8):")
	prof, err := explorefault.Propagate(
		explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13),
		"aes128", nil, 8, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	for r := 9; r <= 10; r++ {
		fmt.Printf("  round-%d input: %5.2f active bytes, %.2f bits entropy per byte differential\n",
			r, prof.ActiveGroups[r-1], prof.Entropy[r-1])
	}
	fmt.Printf("  deepest distinguisher: round %d input (the paper's Fig. 1 observation point)\n",
		prof.DistinguisherRound)
}
