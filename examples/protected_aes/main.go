// protected_aes reproduces §IV-C: AES-128 behind a duplication
// countermeasure (two redundant branches, compare ciphertexts, mute with
// a random string on mismatch). The RL agent's action space doubles to
// 256 bits — bits [0,128) fault branch 1, bits [128,256) fault branch 2 —
// and the t-test sees released ciphertexts only. The agent must learn
// what Table IV reports: inject the *same single bit* in both branches,
// the one fault that reliably evades the comparison.
//
// Run with:
//
//	go run ./examples/protected_aes
package main

import (
	"flag"
	"fmt"
	"log"

	explorefault "repro"
)

func main() {
	episodes := flag.Int("episodes", 500, "training episode budget")
	seed := flag.Uint64("seed", 11, "experiment seed")
	flag.Parse()

	fmt.Println("protected AES-128 (duplication countermeasure), fault at round 9")
	fmt.Printf("episode length 256 (both branches), %d episodes\n\n", *episodes)

	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:    "aes128",
		Round:     9,
		Protected: true,
		Episodes:  *episodes,
		Samples:   256,
		Seed:      *seed,
		Progress: func(p explorefault.Progress) {
			if p.Episodes%100 < 8 {
				fmt.Printf("  episode %4d: leaky fraction %.2f, avg bits %.1f\n",
					p.Episodes, p.AvgLeaky, p.AvgBits)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged two-branch pattern (t = %.1f, exploitable = %v):\n",
		res.ConvergedT, res.ConvergedLeaky)
	var b1, b2 []int
	for _, b := range res.Converged.Bits() {
		if b < 128 {
			b1 = append(b1, b)
		} else {
			b2 = append(b2, b-128)
		}
	}
	fmt.Printf("  branch 1 bits: %v\n", b1)
	fmt.Printf("  branch 2 bits: %v\n", b2)
	matched := 0
	for _, x := range b1 {
		for _, y := range b2 {
			if x == y {
				matched++
			}
		}
	}
	fmt.Printf("  matching bit positions across branches: %d (Table IV's evasion condition)\n", matched)

	// Contrast: the same single bit in both branches evades the
	// countermeasure; the bit in one branch only is always muted.
	same := explorefault.PatternFromBits(256, 76, 128+76)
	one := explorefault.PatternFromBits(256, 76)
	for name, p := range map[string]explorefault.Pattern{
		"bit 76 in both branches": same,
		"bit 76 in branch 1 only": one,
	} {
		a, err := assessProtected(p, res.Key, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s t = %8.1f exploitable = %v\n", name, a.T, a.Leaky)
	}
}

// assessProtected evaluates a doubled (two-branch) pattern against the
// protected implementation with the standalone ciphertext-only oracle.
func assessProtected(p explorefault.Pattern, key []byte, seed uint64) (explorefault.Assessment, error) {
	return explorefault.AssessProtected(p, explorefault.AssessConfig{
		Cipher: "aes128", Key: key, Round: 9, Samples: 2048, Seed: seed,
	})
}
