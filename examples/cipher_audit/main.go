// cipher_audit demonstrates the defender workflow the paper motivates:
// given a cipher the framework has never been tuned for (PRESENT-80 and
// SIMON-64/128 here), measure its fault coverage round by round, find the
// deepest round where faults stop being exploitable, and confirm the
// verdicts with the standalone oracle. No RL is needed for an audit —
// this is the "evaluate the susceptibility of ciphers to FAs" use of the
// tool from the paper's conclusion.
//
// Run with:
//
//	go run ./examples/cipher_audit
package main

import (
	"fmt"
	"log"

	explorefault "repro"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/present"
	_ "repro/internal/ciphers/simon"
	"repro/internal/coverage"
	"repro/internal/prng"
)

func main() {
	for _, name := range []string{"present80", "simon64"} {
		fmt.Printf("== auditing %s ==\n", name)
		audit(name)
		fmt.Println()
	}
}

func audit(name string) {
	rng := prng.New(99)
	info, err := ciphers.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}
	key := make([]byte, info.KeyBytes)
	rng.Fill(key)
	c, err := info.New(key)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := coverage.Scan(c, coverage.Config{
		Samples:       512,
		RandomPerSize: 6,
		Sizes:         []int{2, 4, 8},
	}, rng.Split())
	if err != nil {
		log.Fatal(err)
	}
	groupName := "bytes"
	if info.GroupBits == 4 {
		groupName = "nibbles"
	}
	for _, r := range rep.Rounds {
		fmt.Printf("  round %2d: single bits %2d/%2d exploitable, %s %2d/%2d\n",
			r.Round, r.Bits.Exploitable, r.Bits.Tested, groupName,
			r.Groups.Exploitable, r.Groups.Tested)
	}
	fmt.Printf("  most vulnerable round: %d (of %d)\n", rep.MostVulnerableRound(), info.Rounds)

	// Cross-check one verdict through the public oracle at a higher
	// sample count, the way a certification report would record it.
	round := rep.MostVulnerableRound()
	var pattern explorefault.Pattern
	if info.GroupBits == 4 {
		pattern = explorefault.PatternFromGroups(8*info.BlockBytes, 4, 0)
	} else {
		pattern = explorefault.PatternFromGroups(8*info.BlockBytes, 8, 0)
	}
	a, err := explorefault.Assess(pattern, explorefault.AssessConfig{
		Cipher: name, Key: key, Round: round, Samples: 4096, Seed: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  confirmation: group-0 fault at round %d gives t = %.1f (%s), exploitable = %v\n",
		round, a.T, a.Point, a.Leaky)
}
