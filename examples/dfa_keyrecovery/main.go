// dfa_keyrecovery demonstrates the key-recovery verification layer: the
// Piret–Quisquater differential fault attack recovering the full AES-128
// key from a handful of byte faults, and the nibble-wise guess-and-filter
// attack recovering GIFT-64 round keys 27/28 for both a prior-work model
// (single nibble) and the paper's newly discovered model
// {8, 9, 10, 11, 12, 14}.
//
// Run with:
//
//	go run ./examples/dfa_keyrecovery
package main

import (
	"flag"
	"fmt"
	"log"

	explorefault "repro"
)

func main() {
	seed := flag.Uint64("seed", 2024, "experiment seed")
	pairs := flag.Int("pairs", 256, "faulty encryptions for the GIFT attack")
	flag.Parse()

	fmt.Println("== AES-128: Piret–Quisquater DFA (byte fault at round 9) ==")
	kr, err := explorefault.VerifyKeyRecovery(explorefault.Pattern{}, explorefault.VerifyConfig{
		Cipher: "aes128", Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	printResult(kr)

	for _, tc := range []struct {
		name    string
		nibbles []int
	}{
		{"single nibble (prior work)", []int{5}},
		{"new model {8,9,10,11,12,14} (paper §IV-D)", []int{8, 9, 10, 11, 12, 14}},
	} {
		fmt.Printf("\n== GIFT-64: DFA with %s at round 25 ==\n", tc.name)
		pattern := explorefault.PatternFromGroups(64, 4, tc.nibbles...)
		kr, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
			Cipher: "gift64", Round: 25, Pairs: *pairs, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		printResult(kr)
	}

	fmt.Println("\nnote: the remaining GIFT key bits require a second fault at round 23")
	fmt.Println("(per the paper), which this attack does not target.")
}

func printResult(kr *explorefault.KeyRecovery) {
	fmt.Printf("  recovered key bits : %d / %d\n", kr.RecoveredBits, kr.TotalKeyBits)
	fmt.Printf("  faulty encryptions : %d\n", kr.FaultsUsed)
	fmt.Printf("  offline complexity : ~2^%.1f\n", kr.OfflineLog2)
	fmt.Printf("  verified correct   : %v\n", kr.Correct)
	fmt.Printf("  detail             : %s\n", kr.Notes)
}
