// Quickstart: discover exploitable fault models for GIFT-64 with a small
// training budget, print the converged pattern and the verified fault
// models, and show how a single model is re-checked with the standalone
// leakage oracle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	explorefault "repro"
)

func main() {
	episodes := flag.Int("episodes", 400, "training episode budget")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	fmt.Println("ExploreFault quickstart: GIFT-64, fault injection at round 25")
	fmt.Printf("training for %d episodes (seed %d)...\n\n", *episodes, *seed)

	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:   "gift64",
		Round:    25,
		Episodes: *episodes,
		Seed:     *seed,
		Progress: func(p explorefault.Progress) {
			if p.Episodes%200 < 8 {
				fmt.Printf("  episode %4d: leaky fraction %.2f, avg bits %.1f, best leaky pattern %d bits\n",
					p.Episodes, p.AvgLeaky, p.AvgBits, p.BestLeakyN)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged pattern: %s (t = %.1f, exploitable = %v)\n",
		res.Converged.String(), res.ConvergedT, res.ConvergedLeaky)
	fmt.Printf("training rate: %.0f episodes/min, %.0f steps/min\n\n",
		res.EpisodesPerMin, res.StepsPerMin)

	fmt.Printf("verified fault models (%d):\n", len(res.Models))
	for _, m := range res.Models {
		fmt.Printf("  %-40s t = %8.1f\n", m.String(), m.T)
	}

	// Re-check one model with the standalone oracle at a higher sample
	// count, the way a certification flow would.
	if len(res.Models) > 0 {
		m := res.Models[0]
		a, err := explorefault.Assess(m.Pattern, explorefault.AssessConfig{
			Cipher: "gift64", Key: res.Key, Round: 25, Samples: 4096, Seed: *seed + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nindependent re-assessment of %s: t = %.1f at order %d (%s), exploitable = %v\n",
			m.String(), a.T, a.Order, a.Point, a.Leaky)
	}
}
