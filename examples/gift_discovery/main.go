// gift_discovery reproduces the paper's §IV-D workflow end to end: run a
// discovery session on GIFT-64 with faults at round 25, list the nibble
// fault models seen during the first training window (the Table V view),
// and verify the paper's newly discovered multi-nibble model
// {8, 9, 10, 11, 12, 14} with the built-in ExpFault-style key-recovery
// attack.
//
// Run with:
//
//	go run ./examples/gift_discovery
package main

import (
	"flag"
	"fmt"
	"log"

	explorefault "repro"
)

func main() {
	episodes := flag.Int("episodes", 1000, "training episode budget")
	seed := flag.Uint64("seed", 5, "experiment seed")
	flag.Parse()

	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:   "gift64",
		Round:    25,
		Episodes: *episodes,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GIFT-64 discovery, %d episodes, fault at round 25\n\n", res.Episodes)
	fmt.Println("most frequent exploitable patterns in the first 1K episodes (Table V view):")
	fmt.Printf("%-8s %-44s %s\n", "count", "pattern", "nibbles")
	shown := 0
	for _, pf := range res.FirstWindowPatterns {
		if shown >= 8 {
			break
		}
		fmt.Printf("%-8d %-44s %v\n", pf.Count, pf.Pattern.String(), pf.Pattern.Groups(4))
		shown++
	}

	fmt.Printf("\nconverged pattern: %s (t = %.1f)\n", res.Converged.String(), res.ConvergedT)
	fmt.Printf("verified fault models (%d):\n", len(res.Models))
	for i, m := range res.Models {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(res.Models)-10)
			break
		}
		fmt.Printf("  %-44s t = %8.1f\n", m.String(), m.T)
	}

	// Verify the paper's new fault model with the key-recovery attack,
	// regardless of whether this (short) run rediscovered it exactly.
	newModel := explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)
	fmt.Println("\nExpFault-style verification of the paper's new model {8,9,10,11,12,14}:")
	kr, err := explorefault.VerifyKeyRecovery(newModel, explorefault.VerifyConfig{
		Cipher: "gift64", Round: 25, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovered %d of %d key bits from %d faulty encryptions\n",
		kr.RecoveredBits, kr.TotalKeyBits, kr.FaultsUsed)
	fmt.Printf("  offline complexity ~2^%.1f, recovered bits verified correct: %v\n",
		kr.OfflineLog2, kr.Correct)
	fmt.Printf("  detail: %s\n", kr.Notes)
}
