package explorefault_test

import (
	"testing"

	explorefault "repro"
)

func TestPatternHelpers(t *testing.T) {
	p := explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)
	if p.Count() != 32 {
		t.Errorf("diagonal pattern has %d bits, want 32", p.Count())
	}
	q := explorefault.PatternFromBits(64, 3, 40)
	if !q.Bit(3) || !q.Bit(40) || q.Count() != 2 {
		t.Error("PatternFromBits wrong")
	}
	e := explorefault.NewPattern(64)
	if !e.IsZero() || e.Len() != 64 {
		t.Error("NewPattern wrong")
	}
}

func TestCipherRegistry(t *testing.T) {
	names := explorefault.Ciphers()
	want := map[string]bool{"aes128": true, "gift64": true, "gift128": true, "present80": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing ciphers: %v (have %v)", want, names)
	}
	info, err := explorefault.LookupCipher("gift64")
	if err != nil {
		t.Fatal(err)
	}
	if info.Rounds != 28 || info.BlockBytes != 8 || info.GroupBits != 4 {
		t.Errorf("gift64 info wrong: %+v", info)
	}
	if _, err := explorefault.LookupCipher("des"); err == nil {
		t.Error("LookupCipher accepted unknown cipher")
	}
}

func TestAssessTableIContrast(t *testing.T) {
	// Public-API version of Table I: AES byte fault at round 8 is
	// invisible at order 1 and obvious at order 2.
	byteFault := explorefault.PatternFromGroups(128, 8, 0)
	o1, err := explorefault.Assess(byteFault, explorefault.AssessConfig{
		Cipher: "aes128", Round: 8, FixedOrder: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := explorefault.Assess(byteFault, explorefault.AssessConfig{
		Cipher: "aes128", Round: 8, FixedOrder: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o1.Leaky {
		t.Errorf("first-order t = %.2f classified leaky", o1.T)
	}
	if !o2.Leaky || o2.Order != 2 {
		t.Errorf("second-order t = %.2f (order %d), want leaky at order 2", o2.T, o2.Order)
	}
	if o2.Threshold != 4.5 {
		t.Errorf("threshold = %v", o2.Threshold)
	}
}

func TestAssessValidation(t *testing.T) {
	p := explorefault.PatternFromBits(128, 0)
	if _, err := explorefault.Assess(p, explorefault.AssessConfig{Cipher: "nope", Round: 8}); err == nil {
		t.Error("accepted unknown cipher")
	}
	if _, err := explorefault.Assess(p, explorefault.AssessConfig{
		Cipher: "aes128", Round: 8, Key: make([]byte, 5),
	}); err == nil {
		t.Error("accepted wrong key length")
	}
}

func TestDiscoverGIFTSmallBudget(t *testing.T) {
	// A miniature end-to-end discovery on GIFT-64: tiny budget, but the
	// session must produce a leaky converged pattern and verified
	// nibble models.
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:     "gift64",
		Round:      25,
		Episodes:   160,
		NumEnvs:    4,
		Samples:    256,
		MaxHarvest: 6,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedLeaky {
		t.Fatal("tiny GIFT session failed to converge to a leaky pattern")
	}
	if len(res.Models) == 0 {
		t.Fatal("no fault models harvested")
	}
	for _, m := range res.Models {
		if !m.Verified {
			t.Errorf("unverified model in results: %v", m)
		}
		if m.T <= 4.5 && m.Class != explorefault.RawPattern {
			t.Errorf("model %v has t = %.2f <= threshold", m, m.T)
		}
	}
	if len(res.Buckets) == 0 {
		t.Error("no training buckets")
	}
	if res.Episodes < 160 {
		t.Errorf("ran %d episodes", res.Episodes)
	}
	if res.EpisodesPerMin <= 0 || res.StepsPerMin <= 0 {
		t.Error("training-rate figures missing")
	}
	if len(res.Key) != 16 {
		t.Error("key not reported")
	}
}

func TestDiscoverValidation(t *testing.T) {
	if _, err := explorefault.Discover(explorefault.DiscoverConfig{Cipher: "gift64"}); err == nil {
		t.Error("accepted missing round")
	}
	if _, err := explorefault.Discover(explorefault.DiscoverConfig{Cipher: "gift64", Round: 99}); err == nil {
		t.Error("accepted out-of-range round")
	}
	if _, err := explorefault.Discover(explorefault.DiscoverConfig{Cipher: "nope", Round: 1}); err == nil {
		t.Error("accepted unknown cipher")
	}
}

func TestVerifyKeyRecoveryAES(t *testing.T) {
	res, err := explorefault.VerifyKeyRecovery(explorefault.Pattern{}, explorefault.VerifyConfig{
		Cipher: "aes128", Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct || res.RecoveredBits != 128 {
		t.Errorf("AES PQ: %d bits, correct=%v (%s)", res.RecoveredBits, res.Correct, res.Notes)
	}
}

func TestVerifyKeyRecoveryGIFTNewModel(t *testing.T) {
	pattern := explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)
	res, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
		Cipher: "gift64", Round: 25, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("GIFT DFA returned incorrect bits (%s)", res.Notes)
	}
	if res.RecoveredBits < 40 {
		t.Errorf("recovered %d bits (%s)", res.RecoveredBits, res.Notes)
	}
}

func TestVerifyKeyRecoveryUnknownCipher(t *testing.T) {
	if _, err := explorefault.VerifyKeyRecovery(explorefault.Pattern{}, explorefault.VerifyConfig{
		Cipher: "present80",
	}); err == nil {
		t.Error("accepted cipher without an attack")
	}
}

func TestPropagate(t *testing.T) {
	pattern := explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)
	prof, err := explorefault.Propagate(pattern, "aes128", nil, 8, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prof.DistinguisherRound < 9 {
		t.Errorf("distinguisher round = %d, want >= 9", prof.DistinguisherRound)
	}
}
