package explorefault_test

import (
	"fmt"
	"math"
	"testing"

	explorefault "repro"
)

// discoverFingerprint compresses everything observable about a discovery
// run into a comparable string, with float64s rendered as raw bits so any
// numeric drift — however small — fails the comparison.
func discoverFingerprint(res *explorefault.DiscoveryResult) string {
	fp := fmt.Sprintf("conv=%s t=%x leaky=%v eps=%d",
		res.Converged.String(), math.Float64bits(res.ConvergedT),
		res.ConvergedLeaky, res.Episodes)
	for _, b := range res.Buckets {
		fp += fmt.Sprintf("|%d-%d:%d,%d,%d,%x",
			b.StartEpisode, b.EndEpisode, b.LeakyEpisodes,
			b.SingleBitModels, b.MultiBitModels, math.Float64bits(b.AvgBitsSelected))
	}
	for _, p := range res.FirstWindowPatterns {
		fp += fmt.Sprintf("|%s:%d", p.Pattern.String(), p.Count)
	}
	return fp
}

// TestDiscoverDeterminism is the engine's central guarantee: a seeded
// Discover run is byte-identical across worker counts and with the oracle
// cache on or off. Worker sharding only changes who computes which shard
// (merge order is fixed) and caching is exact because assessments are pure
// functions of (seed, pattern, round).
func TestDiscoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant training run")
	}
	base := explorefault.DiscoverConfig{
		Cipher:      "gift64",
		Round:       25,
		Episodes:    24,
		NumEnvs:     4,
		Samples:     128,
		Seed:        7,
		SkipHarvest: true,
	}
	variants := []struct {
		name    string
		workers int
		noCache bool
	}{
		{"workers=1/cache=on", 1, false},
		{"workers=4/cache=on", 4, false},
		{"workers=1/cache=off", 1, true},
		{"workers=4/cache=off", 4, true},
	}
	var want string
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := base
			cfg.Workers = v.workers
			cfg.NoOracleCache = v.noCache
			res, err := explorefault.Discover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Cache counters legitimately differ between cache on/off
			// and are deliberately absent from the fingerprint.
			fp := discoverFingerprint(res)
			if v.noCache {
				if res.Cache.Hits != 0 || res.Cache.Misses != 0 {
					t.Errorf("cache disabled but counters moved: %+v", res.Cache)
				}
			} else if res.Cache.Hits+res.Cache.Misses == 0 {
				t.Error("cache enabled but counters never moved")
			}
			if want == "" {
				want = fp
				return
			}
			if fp != want {
				t.Errorf("outcome diverged from first variant:\n got %s\nwant %s", fp, want)
			}
		})
	}
}

// TestAssessDeterminism: the standalone oracle must return bit-identical
// statistics for any worker count, under every typed fault model and both
// oracles. The model changes what the campaign injects and SIFA changes
// what it accumulates, but neither may perturb the sharding contract.
func TestAssessDeterminism(t *testing.T) {
	pattern := explorefault.PatternFromGroups(64, 4, 5)
	for _, model := range explorefault.FaultModels() {
		for _, oracle := range []explorefault.OracleKind{explorefault.OracleWelch, explorefault.OracleSIFA} {
			t.Run(fmt.Sprintf("%s/%s", model, oracle), func(t *testing.T) {
				var want uint64
				for i, workers := range []int{1, 4} {
					res, err := explorefault.Assess(pattern, explorefault.AssessConfig{
						Cipher:     "gift64",
						Round:      25,
						Samples:    640, // ragged final shard
						Workers:    workers,
						FaultModel: model,
						Oracle:     oracle,
						Seed:       9,
					})
					if err != nil {
						t.Fatal(err)
					}
					bits := math.Float64bits(res.T)
					if i == 0 {
						want = bits
						continue
					}
					if bits != want {
						t.Errorf("workers=%d: T bits %x != workers=1 bits %x", workers, bits, want)
					}
				}
			})
		}
	}
}

// TestDiscoverDeterminismMultiModel: the same sharding guarantee when the
// agent chooses among several fault models (widened action space) and
// scores them with the SIFA oracle.
func TestDiscoverDeterminismMultiModel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant training run")
	}
	base := explorefault.DiscoverConfig{
		Cipher:      "gift64",
		Round:       25,
		Episodes:    16,
		NumEnvs:     4,
		Samples:     128,
		Seed:        21,
		SkipHarvest: true,
		FaultModels: []explorefault.FaultModel{explorefault.XorFlip, explorefault.StuckAtZero, explorefault.RandomNibble},
		Oracle:      explorefault.OracleSIFA,
	}
	var want string
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		res, err := explorefault.Discover(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fp := discoverFingerprint(res) + "|model=" + res.ConvergedModel.String()
		if want == "" {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, fp, want)
		}
	}
}

// TestAssessProtectedDeterminism: the countermeasure oracle shares the
// same guarantee (per-shard Protected instances with derived substreams).
func TestAssessProtectedDeterminism(t *testing.T) {
	// The same single bit in both branches: a reliably-equal fault that
	// survives the duplication check (the Table IV convergence shape).
	pattern := explorefault.PatternFromBits(128, 12, 64+12)
	var want uint64
	for i, workers := range []int{1, 4} {
		res, err := explorefault.AssessProtected(pattern, explorefault.AssessConfig{
			Cipher:  "gift64",
			Round:   25,
			Samples: 640,
			Workers: workers,
			Seed:    13,
		})
		if err != nil {
			t.Fatal(err)
		}
		bits := math.Float64bits(res.T)
		if i == 0 {
			want = bits
			continue
		}
		if bits != want {
			t.Errorf("workers=%d: T bits %x != workers=1 bits %x", workers, bits, want)
		}
	}
}
