// obsreport turns the structured JSONL event logs written with -events
// (and optionally the Chrome trace files written with -trace) into an
// offline run report: phase latency breakdown, throughput over time,
// cache effectiveness, episode and leakage rates, and event-loss
// detection via the final emitter_stats line. The analysis engine lives
// in internal/runreport (shared with the job server's report endpoint);
// this command adds the CLI, the diff gate and the fleet mode.
//
// Examples:
//
//	go run ./cmd/obsreport run.jsonl
//	go run ./cmd/obsreport -format json -trace run-trace.json run.jsonl
//	go run ./cmd/obsreport -diff -threshold 0.2 old.jsonl new.jsonl
//	go run ./cmd/obsreport -fleet /var/lib/explorefaultd
//
// In -diff mode the two logs are reduced to comparable headline metrics
// and the exit status is nonzero when any of them regresses beyond the
// threshold, so a CI job can gate on "the new run is not slower".
//
// In -fleet mode the argument is a directory of per-job event logs (a
// job server's data directory); every log's final job_usage record is
// folded into one markdown fleet report: per-tenant cost table,
// per-cipher throughput, and the queue-wait vs run-time breakdown.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/report"
	"repro/internal/runreport"
)

// Re-exported analysis types so this package's tests (and any scripts
// importing the old shapes) keep compiling after the extraction to
// internal/runreport.
type (
	Report        = runreport.Report
	BatchPathStat = runreport.BatchPathStat
)

// analyzeFile parses one JSONL event log (and optional trace file).
func analyzeFile(eventsPath, tracePath string) (*Report, error) {
	return runreport.AnalyzeFile(eventsPath, tracePath)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "markdown", "report output: markdown or json")
	tracePath := fs.String("trace", "", "also analyze this Chrome trace-event JSON file (span durations, worker utilization)")
	diff := fs.Bool("diff", false, "compare two event logs: obsreport -diff old.jsonl new.jsonl")
	fleet := fs.Bool("fleet", false, "fold a directory of per-job event logs into one fleet report: obsreport -fleet datadir")
	threshold := fs.Float64("threshold", 0.10, "relative regression threshold for -diff (0.10 = 10%)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff && *fleet {
		return errors.New("-diff and -fleet are mutually exclusive")
	}

	if *fleet {
		if fs.NArg() != 1 {
			return errors.New("-fleet needs exactly one directory of per-job event logs")
		}
		fr, err := runreport.AnalyzeFleet(fs.Arg(0))
		if err != nil {
			return err
		}
		switch *format {
		case "json":
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(fr)
		case "markdown", "md":
			runreport.WriteFleetMarkdown(stdout, fr)
			return nil
		default:
			return fmt.Errorf("unknown -format %q (want markdown or json)", *format)
		}
	}

	if *diff {
		if fs.NArg() != 2 {
			return errors.New("-diff needs exactly two event logs: old.jsonl new.jsonl")
		}
		old, err := analyzeFile(fs.Arg(0), "")
		if err != nil {
			return err
		}
		cur, err := analyzeFile(fs.Arg(1), "")
		if err != nil {
			return err
		}
		return writeDiff(stdout, *format, old, cur, *threshold)
	}

	if fs.NArg() != 1 {
		return errors.New("usage: obsreport [-format markdown|json] [-trace trace.json] run.jsonl")
	}
	rep, err := analyzeFile(fs.Arg(0), *tracePath)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "markdown", "md":
		runreport.WriteMarkdown(stdout, rep)
		return nil
	default:
		return fmt.Errorf("unknown -format %q (want markdown or json)", *format)
	}
}

// diffMetric is one headline metric compared across two runs.
type diffMetric struct {
	Name      string  `json:"name"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Delta     float64 `json:"delta"`  // relative change, signed
	Better    string  `json:"better"` // "higher" or "lower"
	Regressed bool    `json:"regressed"`
}

// diffMetrics extracts the comparable headline metrics of two reports
// and flags regressions beyond threshold. Metrics absent from either run
// (zero on both sides, or zero baseline) are skipped rather than
// producing divide-by-zero noise.
func diffMetrics(old, cur *Report, threshold float64) []diffMetric {
	type spec struct {
		name   string
		get    func(*Report) float64
		better string
	}
	specs := []spec{
		{"episodes_per_min", func(r *Report) float64 { return r.EpisodesPerMin }, "higher"},
		{"cache_hit_rate", func(r *Report) float64 { return r.Cache.HitRate }, "higher"},
		{"leaky_rate", func(r *Report) float64 { return r.LeakyRate }, "higher"},
		{"mean_campaign_ms", func(r *Report) float64 { return phaseMean(r, "campaign") }, "lower"},
		{"mean_ppo_update_ms", func(r *Report) float64 { return phaseMean(r, "ppo_update") }, "lower"},
		{"mean_traces_per_sec", meanThroughput, "higher"},
	}
	var out []diffMetric
	for _, s := range specs {
		o, n := s.get(old), s.get(cur)
		if o == 0 {
			continue
		}
		d := (n - o) / o
		regressed := false
		switch s.better {
		case "higher":
			regressed = d < -threshold
		case "lower":
			regressed = d > threshold
		}
		out = append(out, diffMetric{
			Name: s.name, Old: o, New: n, Delta: d,
			Better: s.better, Regressed: regressed,
		})
	}
	return out
}

func phaseMean(r *Report, name string) float64 {
	for _, p := range r.Phases {
		if p.Phase == name {
			return p.MeanMS
		}
	}
	return 0
}

func meanThroughput(r *Report) float64 {
	if len(r.Throughput) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.Throughput {
		sum += p.TracesPerSec
	}
	return sum / float64(len(r.Throughput))
}

// renderFenced wraps the fixed-width table in a code fence so it renders
// verbatim in markdown.
func renderFenced(w io.Writer, tb *report.Table) {
	fmt.Fprintln(w, "```")
	tb.Render(w)
	fmt.Fprintln(w, "```")
	fmt.Fprintln(w)
}

// writeDiff prints the metric comparison and returns an error (nonzero
// exit) when any metric regressed beyond the threshold.
func writeDiff(w io.Writer, format string, old, cur *Report, threshold float64) error {
	metrics := diffMetrics(old, cur, threshold)
	regressed := 0
	for _, m := range metrics {
		if m.Regressed {
			regressed++
		}
	}
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Old       string       `json:"old"`
			New       string       `json:"new"`
			Threshold float64      `json:"threshold"`
			Metrics   []diffMetric `json:"metrics"`
			Regressed int          `json:"regressed"`
		}{old.Source, cur.Source, threshold, metrics, regressed}); err != nil {
			return err
		}
	case "markdown", "md":
		fmt.Fprintf(w, "# Run diff: %s vs %s\n\n", old.Source, cur.Source)
		tb := report.NewTable(fmt.Sprintf("headline metrics (threshold %.0f%%)", 100*threshold),
			"metric", "old", "new", "delta", "verdict")
		for _, m := range metrics {
			verdict := "ok"
			if m.Regressed {
				verdict = "REGRESSED"
			}
			tb.AddRow(m.Name,
				fmt.Sprintf("%.3f", m.Old),
				fmt.Sprintf("%.3f", m.New),
				fmt.Sprintf("%+.1f%%", 100*m.Delta),
				verdict)
		}
		renderFenced(w, tb)
	default:
		return fmt.Errorf("unknown -format %q (want markdown or json)", format)
	}
	if regressed > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressed, 100*threshold)
	}
	return nil
}
