// obsreport turns the structured JSONL event logs written with -events
// (and optionally the Chrome trace files written with -trace) into an
// offline run report: phase latency breakdown, throughput over time,
// cache effectiveness, episode and leakage rates, and event-loss
// detection via the final emitter_stats line.
//
// Examples:
//
//	go run ./cmd/obsreport run.jsonl
//	go run ./cmd/obsreport -format json -trace run-trace.json run.jsonl
//	go run ./cmd/obsreport -diff -threshold 0.2 old.jsonl new.jsonl
//
// In -diff mode the two logs are reduced to comparable headline metrics
// and the exit status is nonzero when any of them regresses beyond the
// threshold, so a CI job can gate on "the new run is not slower".
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "markdown", "report output: markdown or json")
	tracePath := fs.String("trace", "", "also analyze this Chrome trace-event JSON file (span durations, worker utilization)")
	diff := fs.Bool("diff", false, "compare two event logs: obsreport -diff old.jsonl new.jsonl")
	threshold := fs.Float64("threshold", 0.10, "relative regression threshold for -diff (0.10 = 10%)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			return errors.New("-diff needs exactly two event logs: old.jsonl new.jsonl")
		}
		old, err := analyzeFile(fs.Arg(0), "")
		if err != nil {
			return err
		}
		cur, err := analyzeFile(fs.Arg(1), "")
		if err != nil {
			return err
		}
		return writeDiff(stdout, *format, old, cur, *threshold)
	}

	if fs.NArg() != 1 {
		return errors.New("usage: obsreport [-format markdown|json] [-trace trace.json] run.jsonl")
	}
	rep, err := analyzeFile(fs.Arg(0), *tracePath)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "markdown", "md":
		writeMarkdown(stdout, rep)
		return nil
	default:
		return fmt.Errorf("unknown -format %q (want markdown or json)", *format)
	}
}

// Report is the distilled view of one run's event log (plus an optional
// trace file). It is the JSON output shape; the markdown renderer walks
// the same struct.
type Report struct {
	Source string `json:"source"`
	Binary string `json:"binary,omitempty"`
	Cipher string `json:"cipher,omitempty"`
	Events int    `json:"events"`

	// Emitter health, from the final emitter_stats line.
	EmitterStatsSeen bool   `json:"emitter_stats_seen"`
	EventsDropped    uint64 `json:"events_dropped"`

	WallClock float64 `json:"wall_clock_seconds"`

	// Phase latency breakdown, one row per phase.
	Phases []PhaseStat `json:"phases,omitempty"`

	// Throughput over time: samples/sec per elapsed-time bucket, from
	// campaign_finished durations.
	Throughput []ThroughputPoint `json:"throughput,omitempty"`

	// Oracle cache effectiveness.
	Cache CacheStat `json:"cache"`

	// Training census.
	Episodes       int     `json:"episodes"`
	LeakyEpisodes  int     `json:"leaky_episodes"`
	LeakyRate      float64 `json:"leaky_rate"`
	EpisodesPerMin float64 `json:"episodes_per_min,omitempty"`
	BestT          float64 `json:"best_t,omitempty"`

	// BatchPaths counts campaigns per cipher and encryption engine, from
	// the batch_path field campaign events carry ("kernel" when the
	// cipher's batch kernel ran, "scalar-fallback" otherwise).
	BatchPaths []BatchPathStat `json:"batch_paths,omitempty"`

	// FaultModels breaks the run down per typed fault model, from the
	// fault_model field episode and campaign events carry: exploitable
	// rate per model (which model the agent found rewarding) and
	// campaign latency per model (what each injection op costs — the
	// XOR-only hot path versus (AND, XOR) lanes versus scalar fallback).
	FaultModels []FaultModelStat `json:"fault_models,omitempty"`

	// Sweep aggregates an exhaustive atlas sweep's events, when the log
	// came from cmd/atlas (or anything else emitting sweep_* events).
	Sweep *SweepStat `json:"sweep,omitempty"`

	// Span aggregates from the optional trace file.
	Spans []SpanStat `json:"spans,omitempty"`
	// WorkerUtilization is busy-shard time over workers*campaign wall
	// time, derivable only when a trace file is given and campaign events
	// recorded the worker count.
	WorkerUtilization float64 `json:"worker_utilization,omitempty"`

	Warnings []string `json:"warnings,omitempty"`

	// workers is the largest worker count any campaign reported; it only
	// feeds the trace-derived utilization estimate, so it stays out of
	// the JSON shape.
	workers float64
}

// PhaseStat aggregates the durations of one phase (campaigns, PPO
// updates, whole sessions) as reported by the events themselves.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// FaultModelStat aggregates one typed fault model's episodes and
// campaign durations.
type FaultModelStat struct {
	Model          string  `json:"model"`
	Episodes       int     `json:"episodes"`
	LeakyEpisodes  int     `json:"leaky_episodes"`
	LeakyRate      float64 `json:"leaky_rate"`
	Campaigns      int     `json:"campaigns"`
	CampaignMeanMS float64 `json:"campaign_mean_ms"`
	CampaignMaxMS  float64 `json:"campaign_max_ms"`
}

// SweepStat distills sweep_started / sweep_cell / sweep_finished events:
// how big the enumeration was, how fast it went, and which fault models
// carried the exploitable cells. CellEvents counts freshly assessed
// cells (resumed shards replay from the checkpoint without re-emitting),
// so CellEvents < Cells on a resumed run is expected, not data loss.
type SweepStat struct {
	Cells           int              `json:"cells"`
	ResumedShards   int              `json:"resumed_shards,omitempty"`
	CellEvents      int              `json:"cell_events"`
	Exploitable     int              `json:"exploitable"`
	ExploitableRate float64          `json:"exploitable_rate"`
	MaxT            float64          `json:"max_t"`
	DurationSeconds float64          `json:"duration_seconds,omitempty"`
	CellsPerSec     float64          `json:"cells_per_sec,omitempty"`
	Finished        bool             `json:"finished"`
	ByModel         []SweepModelStat `json:"by_model,omitempty"`
}

// SweepModelStat is one fault model's share of the sweep's cell events.
type SweepModelStat struct {
	Model       string  `json:"model"`
	Cells       int     `json:"cells"`
	Exploitable int     `json:"exploitable"`
	MaxT        float64 `json:"max_t"`
}

// BatchPathStat counts one cipher's campaigns on one encryption engine.
type BatchPathStat struct {
	Cipher    string `json:"cipher"`
	Path      string `json:"path"`
	Campaigns int    `json:"campaigns"`
}

// ThroughputPoint is the mean campaign throughput (t-test traces per
// second) inside one elapsed-time bucket.
type ThroughputPoint struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TracesPerSec   float64 `json:"traces_per_sec"`
	Campaigns      int     `json:"campaigns"`
}

// CacheStat is the oracle memoization summary, preferring the
// authoritative session_finished totals and falling back to counting
// oracle_eval events.
type CacheStat struct {
	Lookups uint64  `json:"lookups"`
	Hits    uint64  `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// SpanStat aggregates the trace file's complete events by span name.
type SpanStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// analyzeFile parses one JSONL event log (and optional trace file) into
// a Report.
func analyzeFile(eventsPath, tracePath string) (*Report, error) {
	f, err := os.Open(eventsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := analyze(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", eventsPath, err)
	}
	rep.Source = eventsPath
	if tracePath != "" {
		if err := analyzeTrace(rep, tracePath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// num reads a numeric event field; JSON unmarshals every number into
// float64, but be liberal in what we accept.
func num(fields map[string]any, key string) (float64, bool) {
	switch v := fields[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	}
	return 0, false
}

// analyze reduces an event stream to a Report.
func analyze(r io.Reader) (*Report, error) {
	rep := &Report{}
	phases := map[string]*PhaseStat{}
	phase := func(name string) *PhaseStat {
		p := phases[name]
		if p == nil {
			p = &PhaseStat{Phase: name}
			phases[name] = p
		}
		return p
	}
	observe := func(p *PhaseStat, ms float64) {
		p.Count++
		p.TotalMS += ms
		if ms > p.MaxMS {
			p.MaxMS = ms
		}
	}

	models := map[string]*FaultModelStat{}
	modelStat := func(fields map[string]any) *FaultModelStat {
		name, ok := fields["fault_model"].(string)
		if !ok || name == "" {
			return nil
		}
		m := models[name]
		if m == nil {
			m = &FaultModelStat{Model: name}
			models[name] = m
		}
		return m
	}

	// campaign_finished carries duration but not the sample count, which
	// lives on the matching campaign_started; campaigns from concurrent
	// environments interleave, so pair them by pattern.
	samplesByPattern := map[string]float64{}
	batchPaths := map[[2]string]int{}
	var sweep *SweepStat
	sweepModels := map[string]*SweepModelStat{}
	var firstTS, lastTS time.Time
	var evalHits, evalLookups uint64
	var sessionCache *CacheStat
	var throughput []ThroughputPoint
	workers := 0.0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		rep.Events++
		if ts, err := time.Parse(time.RFC3339Nano, ev.TS); err == nil {
			if firstTS.IsZero() {
				firstTS = ts
			}
			lastTS = ts
		}
		f := ev.Fields
		switch ev.Event {
		case obs.EventRunStarted:
			if b, ok := f["binary"].(string); ok {
				rep.Binary = b
			}
			if c, ok := f["cipher"].(string); ok {
				rep.Cipher = c
			}
		case obs.EventCampaignStarted:
			if p, ok := f["pattern"].(string); ok {
				if s, ok := num(f, "samples"); ok {
					samplesByPattern[p] = s
				}
			}
			if w, ok := num(f, "workers"); ok && w > workers {
				workers = w
			}
			if bp, ok := f["batch_path"].(string); ok && bp != "" {
				cipher, _ := f["cipher"].(string)
				batchPaths[[2]string{cipher, bp}]++
			}
		case obs.EventCampaignFinished:
			ms, _ := num(f, "duration_ms")
			observe(phase("campaign"), ms)
			if m := modelStat(f); m != nil {
				m.Campaigns++
				m.CampaignMeanMS += ms // running total; divided below
				if ms > m.CampaignMaxMS {
					m.CampaignMaxMS = ms
				}
			}
			if p, ok := f["pattern"].(string); ok && ms > 0 {
				if s, ok := samplesByPattern[p]; ok {
					ts, err := time.Parse(time.RFC3339Nano, ev.TS)
					elapsed := 0.0
					if err == nil && !firstTS.IsZero() {
						elapsed = ts.Sub(firstTS).Seconds()
					}
					throughput = append(throughput, ThroughputPoint{
						ElapsedSeconds: elapsed,
						TracesPerSec:   s / (ms / 1e3),
						Campaigns:      1,
					})
				}
			}
		case obs.EventOracleEval:
			evalLookups++
			if c, ok := f["cached"].(bool); ok && c {
				evalHits++
			}
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("oracle_eval"), ms)
			}
		case obs.EventEpisode:
			rep.Episodes++
			leaky := false
			if l, ok := f["leaky"].(bool); ok && l {
				rep.LeakyEpisodes++
				leaky = true
			}
			if t, ok := num(f, "t"); ok && t > rep.BestT {
				rep.BestT = t
			}
			if m := modelStat(f); m != nil {
				m.Episodes++
				if leaky {
					m.LeakyEpisodes++
				}
			}
		case obs.EventPPOUpdate:
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("ppo_update"), ms)
			}
		case obs.EventSessionFinished:
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("session"), ms)
			}
			if epm, ok := num(f, "episodes_per_min"); ok {
				rep.EpisodesPerMin = epm
			}
			hits, _ := num(f, "cache_hits")
			misses, _ := num(f, "cache_misses")
			if hits+misses > 0 {
				sessionCache = &CacheStat{
					Lookups: uint64(hits + misses),
					Hits:    uint64(hits),
				}
			}
		case obs.EventSweepStarted:
			sweep = &SweepStat{}
			if n, ok := num(f, "cells"); ok {
				sweep.Cells = int(n)
			}
			if n, ok := num(f, "resumed_shards"); ok {
				sweep.ResumedShards = int(n)
			}
		case obs.EventSweepCell:
			if sweep == nil {
				sweep = &SweepStat{}
			}
			sweep.CellEvents++
			exploitable := false
			if e, ok := f["exploitable"].(bool); ok && e {
				exploitable = true
			}
			t, _ := num(f, "t")
			if name, ok := f["model"].(string); ok && name != "" {
				m := sweepModels[name]
				if m == nil {
					m = &SweepModelStat{Model: name}
					sweepModels[name] = m
				}
				m.Cells++
				if exploitable {
					m.Exploitable++
				}
				if t > m.MaxT {
					m.MaxT = t
				}
			}
			// Provisional totals; sweep_finished overwrites them with the
			// authoritative atlas summary (which includes resumed cells).
			if exploitable {
				sweep.Exploitable++
			}
			if t > sweep.MaxT {
				sweep.MaxT = t
			}
		case obs.EventSweepFinished:
			if sweep == nil {
				sweep = &SweepStat{}
			}
			sweep.Finished = true
			if n, ok := num(f, "cells"); ok {
				sweep.Cells = int(n)
			}
			if n, ok := num(f, "exploitable"); ok {
				sweep.Exploitable = int(n)
			}
			if t, ok := num(f, "max_t"); ok {
				sweep.MaxT = t
			}
			if ms, ok := num(f, "duration_ms"); ok && ms > 0 {
				sweep.DurationSeconds = ms / 1e3
				sweep.CellsPerSec = float64(sweep.Cells) / sweep.DurationSeconds
			}
		case obs.EventEmitterStats:
			rep.EmitterStatsSeen = true
			if d, ok := num(f, "dropped"); ok {
				rep.EventsDropped = uint64(d)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Events == 0 {
		return nil, errors.New("no events found")
	}

	if !firstTS.IsZero() {
		rep.WallClock = lastTS.Sub(firstTS).Seconds()
	}
	if rep.Episodes > 0 {
		rep.LeakyRate = float64(rep.LeakyEpisodes) / float64(rep.Episodes)
		if rep.EpisodesPerMin == 0 && rep.WallClock > 0 {
			rep.EpisodesPerMin = float64(rep.Episodes) / (rep.WallClock / 60)
		}
	}

	// Cache: the session's own totals are authoritative (they include
	// lookups made before event emission was attached); fall back to
	// counting oracle_eval events.
	if sessionCache != nil {
		rep.Cache = *sessionCache
	} else {
		rep.Cache = CacheStat{Lookups: evalLookups, Hits: evalHits}
	}
	if rep.Cache.Lookups > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(rep.Cache.Lookups)
	}

	for _, p := range phases {
		if p.Count > 0 {
			p.MeanMS = p.TotalMS / float64(p.Count)
		}
		rep.Phases = append(rep.Phases, *p)
	}
	sort.Slice(rep.Phases, func(i, j int) bool { return rep.Phases[i].TotalMS > rep.Phases[j].TotalMS })

	for _, m := range models {
		if m.Campaigns > 0 {
			m.CampaignMeanMS /= float64(m.Campaigns)
		}
		if m.Episodes > 0 {
			m.LeakyRate = float64(m.LeakyEpisodes) / float64(m.Episodes)
		}
		rep.FaultModels = append(rep.FaultModels, *m)
	}
	sort.Slice(rep.FaultModels, func(i, j int) bool { return rep.FaultModels[i].Model < rep.FaultModels[j].Model })

	for key, n := range batchPaths {
		rep.BatchPaths = append(rep.BatchPaths, BatchPathStat{Cipher: key[0], Path: key[1], Campaigns: n})
	}
	sort.Slice(rep.BatchPaths, func(i, j int) bool {
		if rep.BatchPaths[i].Cipher != rep.BatchPaths[j].Cipher {
			return rep.BatchPaths[i].Cipher < rep.BatchPaths[j].Cipher
		}
		return rep.BatchPaths[i].Path < rep.BatchPaths[j].Path
	})

	if sweep != nil {
		if sweep.Cells > 0 {
			sweep.ExploitableRate = float64(sweep.Exploitable) / float64(sweep.Cells)
		}
		for _, m := range sweepModels {
			sweep.ByModel = append(sweep.ByModel, *m)
		}
		sort.Slice(sweep.ByModel, func(i, j int) bool { return sweep.ByModel[i].Model < sweep.ByModel[j].Model })
		rep.Sweep = sweep
	}

	rep.Throughput = bucketThroughput(throughput, rep.WallClock)
	rep.Warnings = warnings(rep)
	rep.workers = workers
	return rep, nil
}

// bucketThroughput folds per-campaign throughput points into at most ten
// elapsed-time buckets so "traces/sec over time" stays readable for long
// runs.
func bucketThroughput(points []ThroughputPoint, wall float64) []ThroughputPoint {
	if len(points) == 0 {
		return nil
	}
	const maxBuckets = 10
	width := wall / maxBuckets
	if width <= 0 {
		// Sub-resolution run: everything lands in one bucket.
		width = math.Inf(1)
	}
	type acc struct {
		sum float64
		n   int
	}
	buckets := map[int]*acc{}
	for _, p := range points {
		i := 0
		if !math.IsInf(width, 1) {
			i = int(p.ElapsedSeconds / width)
			if i >= maxBuckets {
				i = maxBuckets - 1
			}
		}
		a := buckets[i]
		if a == nil {
			a = &acc{}
			buckets[i] = a
		}
		a.sum += p.TracesPerSec
		a.n++
	}
	var out []ThroughputPoint
	for i, a := range buckets {
		elapsed := 0.0
		if !math.IsInf(width, 1) {
			elapsed = (float64(i) + 0.5) * width
		}
		out = append(out, ThroughputPoint{
			ElapsedSeconds: elapsed,
			TracesPerSec:   a.sum / float64(a.n),
			Campaigns:      a.n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedSeconds < out[j].ElapsedSeconds })
	return out
}

// warnings derives data-quality notes a reader should see before
// trusting the numbers.
func warnings(rep *Report) []string {
	var w []string
	if !rep.EmitterStatsSeen {
		w = append(w, "no emitter_stats line: the run ended without closing its event log (crash or kill -9); counts may be incomplete")
	}
	if rep.EventsDropped > 0 {
		w = append(w, fmt.Sprintf("%d events were dropped by the emitter; the log is incomplete", rep.EventsDropped))
	}
	return w
}

// chromeTrace mirrors the document shape internal/obs/trace exports.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

// analyzeTrace parses a Chrome trace-event file, aggregates its complete
// ("X") events by span name into rep.Spans, and estimates worker
// utilization from shard spans when the event log recorded a worker
// count.
func analyzeTrace(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	agg := map[string]*SpanStat{}
	var shardUS, assessUS float64
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := agg[ev.Name]
		if s == nil {
			s = &SpanStat{Name: ev.Name}
			agg[ev.Name] = s
		}
		s.Count++
		ms := ev.Dur / 1e3
		s.TotalMS += ms
		if ms > s.MaxMS {
			s.MaxMS = ms
		}
		switch ev.Name {
		case "shard":
			shardUS += ev.Dur
		case "assess":
			assessUS += ev.Dur
		}
	}
	if len(agg) == 0 {
		return fmt.Errorf("%s: no complete (\"X\") span events", path)
	}
	for _, s := range agg {
		s.MeanMS = s.TotalMS / float64(s.Count)
		rep.Spans = append(rep.Spans, *s)
	}
	sort.Slice(rep.Spans, func(i, j int) bool { return rep.Spans[i].TotalMS > rep.Spans[j].TotalMS })
	if rep.workers > 0 && assessUS > 0 {
		rep.WorkerUtilization = shardUS / (assessUS * rep.workers)
	}
	return nil
}

// renderFenced wraps the fixed-width table in a code fence so it renders
// verbatim in markdown.
func renderFenced(w io.Writer, tb *report.Table) {
	fmt.Fprintln(w, "```")
	tb.Render(w)
	fmt.Fprintln(w, "```")
	fmt.Fprintln(w)
}

// writeMarkdown renders the report as GitHub-flavored markdown using the
// shared table renderer.
func writeMarkdown(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "# Run report: %s\n\n", rep.Source)
	if rep.Binary != "" {
		fmt.Fprintf(w, "binary `%s`", rep.Binary)
		if rep.Cipher != "" {
			fmt.Fprintf(w, ", cipher `%s`", rep.Cipher)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d events over %.2fs wall clock\n\n", rep.Events, rep.WallClock)
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "> **warning:** %s\n\n", warn)
	}

	if len(rep.Phases) > 0 {
		tb := report.NewTable("phase latency", "phase", "count", "total ms", "mean ms", "max ms")
		for _, p := range rep.Phases {
			tb.AddRow(p.Phase, p.Count,
				fmt.Sprintf("%.1f", p.TotalMS),
				fmt.Sprintf("%.2f", p.MeanMS),
				fmt.Sprintf("%.2f", p.MaxMS))
		}
		renderFenced(w, tb)
	}

	if len(rep.Throughput) > 0 {
		tb := report.NewTable("throughput over time", "elapsed s", "traces/sec", "campaigns")
		for _, p := range rep.Throughput {
			tb.AddRow(fmt.Sprintf("%.1f", p.ElapsedSeconds),
				fmt.Sprintf("%.0f", p.TracesPerSec), p.Campaigns)
		}
		renderFenced(w, tb)
	}

	if rep.Cache.Lookups > 0 {
		fmt.Fprintf(w, "oracle cache: %d hits / %d lookups (%.0f%% hit rate)\n\n",
			rep.Cache.Hits, rep.Cache.Lookups, 100*rep.Cache.HitRate)
	}
	if rep.Episodes > 0 {
		fmt.Fprintf(w, "episodes: %d total, %d exploitable (%.1f%%), best t = %.1f",
			rep.Episodes, rep.LeakyEpisodes, 100*rep.LeakyRate, rep.BestT)
		if rep.EpisodesPerMin > 0 {
			fmt.Fprintf(w, ", %.0f episodes/min", rep.EpisodesPerMin)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}

	if len(rep.BatchPaths) > 0 {
		total, kernel := 0, 0
		var parts []string
		for _, b := range rep.BatchPaths {
			total += b.Campaigns
			if b.Path == "kernel" {
				kernel += b.Campaigns
			}
			parts = append(parts, fmt.Sprintf("%s %s x%d", b.Cipher, b.Path, b.Campaigns))
		}
		fmt.Fprintf(w, "batch coverage: %d/%d campaigns on the kernel path (%s)\n\n",
			kernel, total, strings.Join(parts, ", "))
	}

	if s := rep.Sweep; s != nil {
		fmt.Fprintf(w, "sweep: %d cells, %d exploitable (%.1f%%), max t = %.1f",
			s.Cells, s.Exploitable, 100*s.ExploitableRate, s.MaxT)
		if s.CellsPerSec > 0 {
			fmt.Fprintf(w, ", %.1f cells/sec over %.2fs", s.CellsPerSec, s.DurationSeconds)
		}
		if s.ResumedShards > 0 {
			fmt.Fprintf(w, " (%d shards resumed from checkpoint)", s.ResumedShards)
		}
		if !s.Finished {
			fmt.Fprint(w, " — INTERRUPTED before sweep_finished")
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
		if len(s.ByModel) > 0 {
			tb := report.NewTable("sweep cells per fault model", "model", "cells", "exploitable", "rate", "max t")
			for _, m := range s.ByModel {
				rate := 0.0
				if m.Cells > 0 {
					rate = float64(m.Exploitable) / float64(m.Cells)
				}
				tb.AddRow(m.Model, m.Cells, m.Exploitable,
					fmt.Sprintf("%.1f%%", 100*rate),
					fmt.Sprintf("%.1f", m.MaxT))
			}
			renderFenced(w, tb)
		}
	}

	if len(rep.FaultModels) > 0 {
		tb := report.NewTable("per fault model", "model", "episodes", "exploitable", "rate", "campaigns", "mean ms", "max ms")
		for _, m := range rep.FaultModels {
			tb.AddRow(m.Model, m.Episodes, m.LeakyEpisodes,
				fmt.Sprintf("%.1f%%", 100*m.LeakyRate), m.Campaigns,
				fmt.Sprintf("%.2f", m.CampaignMeanMS),
				fmt.Sprintf("%.2f", m.CampaignMaxMS))
		}
		renderFenced(w, tb)
	}

	if len(rep.Spans) > 0 {
		tb := report.NewTable("trace spans", "span", "count", "total ms", "mean ms", "max ms")
		for _, s := range rep.Spans {
			tb.AddRow(s.Name, s.Count,
				fmt.Sprintf("%.1f", s.TotalMS),
				fmt.Sprintf("%.2f", s.MeanMS),
				fmt.Sprintf("%.2f", s.MaxMS))
		}
		renderFenced(w, tb)
	}
	if rep.WorkerUtilization > 0 {
		fmt.Fprintf(w, "worker utilization (from trace): %.0f%%\n", 100*rep.WorkerUtilization)
	}
	if rep.EmitterStatsSeen && rep.EventsDropped == 0 {
		fmt.Fprintln(w, "event log complete: emitter reported 0 dropped events")
	}
}

// diffMetric is one headline metric compared across two runs.
type diffMetric struct {
	Name      string  `json:"name"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	Delta     float64 `json:"delta"`  // relative change, signed
	Better    string  `json:"better"` // "higher" or "lower"
	Regressed bool    `json:"regressed"`
}

// diffMetrics extracts the comparable headline metrics of two reports
// and flags regressions beyond threshold. Metrics absent from either run
// (zero on both sides, or zero baseline) are skipped rather than
// producing divide-by-zero noise.
func diffMetrics(old, cur *Report, threshold float64) []diffMetric {
	type spec struct {
		name   string
		get    func(*Report) float64
		better string
	}
	specs := []spec{
		{"episodes_per_min", func(r *Report) float64 { return r.EpisodesPerMin }, "higher"},
		{"cache_hit_rate", func(r *Report) float64 { return r.Cache.HitRate }, "higher"},
		{"leaky_rate", func(r *Report) float64 { return r.LeakyRate }, "higher"},
		{"mean_campaign_ms", func(r *Report) float64 { return phaseMean(r, "campaign") }, "lower"},
		{"mean_ppo_update_ms", func(r *Report) float64 { return phaseMean(r, "ppo_update") }, "lower"},
		{"mean_traces_per_sec", meanThroughput, "higher"},
	}
	var out []diffMetric
	for _, s := range specs {
		o, n := s.get(old), s.get(cur)
		if o == 0 {
			continue
		}
		d := (n - o) / o
		regressed := false
		switch s.better {
		case "higher":
			regressed = d < -threshold
		case "lower":
			regressed = d > threshold
		}
		out = append(out, diffMetric{
			Name: s.name, Old: o, New: n, Delta: d,
			Better: s.better, Regressed: regressed,
		})
	}
	return out
}

func phaseMean(r *Report, name string) float64 {
	for _, p := range r.Phases {
		if p.Phase == name {
			return p.MeanMS
		}
	}
	return 0
}

func meanThroughput(r *Report) float64 {
	if len(r.Throughput) == 0 {
		return 0
	}
	var sum float64
	for _, p := range r.Throughput {
		sum += p.TracesPerSec
	}
	return sum / float64(len(r.Throughput))
}

// writeDiff prints the metric comparison and returns an error (nonzero
// exit) when any metric regressed beyond the threshold.
func writeDiff(w io.Writer, format string, old, cur *Report, threshold float64) error {
	metrics := diffMetrics(old, cur, threshold)
	regressed := 0
	for _, m := range metrics {
		if m.Regressed {
			regressed++
		}
	}
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Old       string       `json:"old"`
			New       string       `json:"new"`
			Threshold float64      `json:"threshold"`
			Metrics   []diffMetric `json:"metrics"`
			Regressed int          `json:"regressed"`
		}{old.Source, cur.Source, threshold, metrics, regressed}); err != nil {
			return err
		}
	case "markdown", "md":
		fmt.Fprintf(w, "# Run diff: %s vs %s\n\n", old.Source, cur.Source)
		tb := report.NewTable(fmt.Sprintf("headline metrics (threshold %.0f%%)", 100*threshold),
			"metric", "old", "new", "delta", "verdict")
		for _, m := range metrics {
			verdict := "ok"
			if m.Regressed {
				verdict = "REGRESSED"
			}
			tb.AddRow(m.Name,
				fmt.Sprintf("%.3f", m.Old),
				fmt.Sprintf("%.3f", m.New),
				fmt.Sprintf("%+.1f%%", 100*m.Delta),
				verdict)
		}
		renderFenced(w, tb)
	default:
		return fmt.Errorf("unknown -format %q (want markdown or json)", format)
	}
	if regressed > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressed, 100*threshold)
	}
	return nil
}
