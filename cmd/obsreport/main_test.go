package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeLog synthesizes a realistic event log through the real emitter
// (same envelope, same marshaling) with a pinned clock: each event is
// 100ms after the previous one. campaignMS scales how long each campaign
// claims to have taken, so diff tests can fabricate regressions.
func writeLog(t *testing.T, path string, campaignMS float64, close bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e := obs.NewEmitter(f)
	base := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	n := 0
	e.SetClock(func() time.Time {
		n++
		return base.Add(time.Duration(n) * 100 * time.Millisecond)
	})

	e.Emit(obs.EventRunStarted, map[string]any{"binary": "explorefault", "cipher": "gift64", "round": 25})
	for i := 0; i < 4; i++ {
		// Alternate fault models so the per-model breakdown has two rows.
		model := "xor"
		if i%2 == 1 {
			model = "stuck-at-0"
		}
		// Campaign i=3 pretends its cipher lacks a batch kernel so the
		// coverage line has both paths.
		bp := "kernel"
		if i == 3 {
			bp = "scalar-fallback"
		}
		e.Emit(obs.EventCampaignStarted, map[string]any{
			"pattern": "aa00", "samples": 640, "workers": 4, "fault_model": model,
			"cipher": "gift64", "batch_path": bp,
		})
		e.Emit(obs.EventCampaignFinished, map[string]any{
			"pattern": "aa00", "t": 5.5, "leaky": true, "duration_ms": campaignMS, "fault_model": model,
		})
		e.Emit(obs.EventOracleEval, map[string]any{
			"pattern": "aa00", "t": 5.5, "leaky": true,
			"cached": i%2 == 1, "duration_ms": campaignMS,
		})
		e.Emit(obs.EventEpisode, map[string]any{
			"episode": i + 1, "bits": 3, "t": 5.5 + float64(i), "leaky": i != 0, "reward": 1.0,
			"fault_model": model,
		})
	}
	e.Emit(obs.EventPPOUpdate, map[string]any{"episodes": 4, "duration_ms": 2.5})
	e.Emit(obs.EventSessionFinished, map[string]any{
		"episodes": 4, "duration_ms": 4 * campaignMS, "episodes_per_min": 120.0,
		"cache_hits": 2, "cache_misses": 2,
	})
	if close {
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReportMarkdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeLog(t, path, 50, true)

	var out, errb bytes.Buffer
	if err := run([]string{path}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"binary `explorefault`, cipher `gift64`",
		"phase latency",
		"campaign",
		"ppo_update",
		"oracle cache: 2 hits / 4 lookups (50% hit rate)",
		"episodes: 4 total, 3 exploitable (75.0%), best t = 8.5, 120 episodes/min",
		"per fault model",
		"stuck-at-0",
		"batch coverage: 3/4 campaigns on the kernel path (gift64 kernel x3, gift64 scalar-fallback x1)",
		"throughput over time",
		"event log complete: emitter reported 0 dropped events",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown report missing %q\n%s", want, text)
		}
	}
}

func TestReportJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeLog(t, path, 50, true)

	var out bytes.Buffer
	if err := run([]string{"-format", "json", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Binary != "explorefault" || rep.Cipher != "gift64" {
		t.Errorf("run identity: got %q/%q", rep.Binary, rep.Cipher)
	}
	if rep.Episodes != 4 || rep.LeakyEpisodes != 3 {
		t.Errorf("episodes %d leaky %d, want 4/3", rep.Episodes, rep.LeakyEpisodes)
	}
	if rep.Cache.HitRate != 0.5 {
		t.Errorf("cache hit rate %v, want 0.5", rep.Cache.HitRate)
	}
	if !rep.EmitterStatsSeen || rep.EventsDropped != 0 {
		t.Errorf("emitter stats: seen=%v dropped=%d", rep.EmitterStatsSeen, rep.EventsDropped)
	}
	// Per-model breakdown: the log alternates xor and stuck-at-0 (sorted
	// alphabetically in the report); only episode i=0 (xor) is clean.
	if len(rep.FaultModels) != 2 {
		t.Fatalf("fault models = %+v, want 2 rows", rep.FaultModels)
	}
	sa, xor := rep.FaultModels[0], rep.FaultModels[1]
	if sa.Model != "stuck-at-0" || sa.Episodes != 2 || sa.LeakyEpisodes != 2 || sa.Campaigns != 2 {
		t.Errorf("stuck-at-0 row = %+v, want 2 episodes / 2 leaky / 2 campaigns", sa)
	}
	if xor.Model != "xor" || xor.Episodes != 2 || xor.LeakyEpisodes != 1 || xor.LeakyRate != 0.5 {
		t.Errorf("xor row = %+v, want 2 episodes / 1 leaky / rate 0.5", xor)
	}
	if sa.CampaignMeanMS != 50 {
		t.Errorf("stuck-at-0 campaign mean = %v ms, want 50", sa.CampaignMeanMS)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", rep.Warnings)
	}
	if len(rep.BatchPaths) != 2 ||
		rep.BatchPaths[0] != (BatchPathStat{Cipher: "gift64", Path: "kernel", Campaigns: 3}) ||
		rep.BatchPaths[1] != (BatchPathStat{Cipher: "gift64", Path: "scalar-fallback", Campaigns: 1}) {
		t.Errorf("batch paths = %+v, want gift64 kernel x3 + scalar-fallback x1", rep.BatchPaths)
	}
	// 4 campaigns at 640 samples per 50ms = 12800 traces/sec.
	if len(rep.Throughput) == 0 || rep.Throughput[0].TracesPerSec < 12000 || rep.Throughput[0].TracesPerSec > 13000 {
		t.Errorf("throughput %+v, want ~12800 traces/sec", rep.Throughput)
	}
}

// writeSweepLog synthesizes a cmd/atlas-style sweep event log: 4 cells
// across two fault models, one shard resumed from a checkpoint.
func writeSweepLog(t *testing.T, path string, finished bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e := obs.NewEmitter(f)
	base := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	n := 0
	e.SetClock(func() time.Time {
		n++
		return base.Add(time.Duration(n) * 100 * time.Millisecond)
	})

	e.Emit(obs.EventRunStarted, map[string]any{"binary": "atlas", "cipher": "gift64"})
	e.Emit(obs.EventSweepStarted, map[string]any{
		"cipher": "gift64", "cells": 6, "shards": 2, "resumed_shards": 1,
	})
	for i, cell := range []struct {
		model       string
		tval        float64
		exploitable bool
	}{
		{"xor", 12.0, true},
		{"xor", 1.5, false},
		{"stuck-at-0", 8.0, true},
		{"stuck-at-0", 9.0, true},
	} {
		e.Emit(obs.EventSweepCell, map[string]any{
			"round": 25, "pos": []int{i}, "model": cell.model,
			"t": cell.tval, "exploitable": cell.exploitable, "point": "r25",
		})
	}
	if finished {
		// The finished totals include the 2 cells of the resumed shard
		// that never re-emitted sweep_cell.
		e.Emit(obs.EventSweepFinished, map[string]any{
			"cipher": "gift64", "cells": 6, "exploitable": 4,
			"max_t": 12.0, "duration_ms": 3000.0,
		})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReportSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	writeSweepLog(t, path, true)

	var out bytes.Buffer
	if err := run([]string{"-format", "json", path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	s := rep.Sweep
	if s == nil {
		t.Fatal("sweep section missing from a sweep log")
	}
	if s.Cells != 6 || s.CellEvents != 4 || s.ResumedShards != 1 || !s.Finished {
		t.Errorf("sweep census %+v, want 6 cells / 4 cell events / 1 resumed shard / finished", s)
	}
	// The authoritative finished totals, not the 3 exploitable cell events.
	if s.Exploitable != 4 || s.MaxT != 12.0 {
		t.Errorf("sweep totals %+v, want 4 exploitable max t 12 (from sweep_finished)", s)
	}
	if s.ExploitableRate != 4.0/6.0 {
		t.Errorf("exploitable rate %v, want 4/6", s.ExploitableRate)
	}
	if s.CellsPerSec != 2.0 || s.DurationSeconds != 3.0 {
		t.Errorf("throughput %v cells/sec over %vs, want 2.0 over 3.0", s.CellsPerSec, s.DurationSeconds)
	}
	if len(s.ByModel) != 2 || s.ByModel[0].Model != "stuck-at-0" || s.ByModel[1].Model != "xor" {
		t.Fatalf("by-model rows %+v, want sorted stuck-at-0, xor", s.ByModel)
	}
	if sa := s.ByModel[0]; sa.Cells != 2 || sa.Exploitable != 2 || sa.MaxT != 9.0 {
		t.Errorf("stuck-at-0 row %+v, want 2/2 max t 9", sa)
	}
	if xor := s.ByModel[1]; xor.Cells != 2 || xor.Exploitable != 1 || xor.MaxT != 12.0 {
		t.Errorf("xor row %+v, want 2/1 max t 12", xor)
	}

	out.Reset()
	if err := run([]string{path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"sweep: 6 cells, 4 exploitable (66.7%), max t = 12.0, 2.0 cells/sec over 3.00s (1 shards resumed from checkpoint)",
		"sweep cells per fault model",
		"stuck-at-0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("markdown sweep report missing %q\n%s", want, text)
		}
	}

	// An interrupted sweep (no sweep_finished) keeps provisional totals
	// and is flagged.
	cut := filepath.Join(t.TempDir(), "cut.jsonl")
	writeSweepLog(t, cut, false)
	out.Reset()
	if err := run([]string{cut}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "INTERRUPTED before sweep_finished") {
		t.Errorf("interrupted sweep not flagged:\n%s", out.String())
	}
}

func TestReportWarnsOnTruncatedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeLog(t, path, 50, false) // no Close: no emitter_stats line

	var out bytes.Buffer
	if err := run([]string{path}, &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no emitter_stats line") {
		t.Errorf("report should warn about missing emitter_stats:\n%s", out.String())
	}
}

func TestReportWithTrace(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.jsonl")
	writeLog(t, events, 50, true)

	// Hand-written Chrome trace: one 100ms assess span and four 80ms
	// shard spans on a 4-worker campaign -> utilization 320/(100*4) = 0.8.
	trace := filepath.Join(dir, "trace.json")
	doc := map[string]any{"displayTimeUnit": "ms", "traceEvents": []map[string]any{
		{"name": "process_name", "ph": "M", "pid": 1, "tid": 0},
		{"name": "assess", "ph": "X", "ts": 0, "dur": 100000.0, "pid": 1, "tid": 0},
		{"name": "shard", "ph": "X", "ts": 0, "dur": 80000.0, "pid": 1, "tid": 1},
		{"name": "shard", "ph": "X", "ts": 0, "dur": 80000.0, "pid": 1, "tid": 2},
		{"name": "shard", "ph": "X", "ts": 10000, "dur": 80000.0, "pid": 1, "tid": 3},
		{"name": "shard", "ph": "X", "ts": 10000, "dur": 80000.0, "pid": 1, "tid": 4},
	}}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trace, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-format", "json", "-trace", trace, events}, &out, &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("span groups %d, want 2 (assess, shard): %+v", len(rep.Spans), rep.Spans)
	}
	if rep.Spans[0].Name != "shard" || rep.Spans[0].Count != 4 || rep.Spans[0].TotalMS != 320 {
		t.Errorf("busiest span %+v, want shard count 4 total 320ms", rep.Spans[0])
	}
	if rep.WorkerUtilization < 0.79 || rep.WorkerUtilization > 0.81 {
		t.Errorf("worker utilization %v, want 0.8", rep.WorkerUtilization)
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.jsonl")
	writeLog(t, old, 50, true)

	t.Run("no_regression", func(t *testing.T) {
		cur := filepath.Join(dir, "same.jsonl")
		writeLog(t, cur, 52, true) // 4% slower campaigns: inside threshold
		var out bytes.Buffer
		if err := run([]string{"-diff", old, cur}, &out, &out); err != nil {
			t.Fatalf("diff flagged a regression it should not have: %v\n%s", err, out.String())
		}
		if !strings.Contains(out.String(), "mean_campaign_ms") {
			t.Errorf("diff output missing campaign metric:\n%s", out.String())
		}
	})

	t.Run("regression", func(t *testing.T) {
		cur := filepath.Join(dir, "slow.jsonl")
		writeLog(t, cur, 80, true) // 60% slower campaigns
		var out bytes.Buffer
		err := run([]string{"-diff", "-threshold", "0.2", old, cur}, &out, &out)
		if err == nil {
			t.Fatalf("diff should exit nonzero on a 60%% campaign slowdown:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "regressed") {
			t.Errorf("error %q should mention regression", err)
		}
		if !strings.Contains(out.String(), "REGRESSED") {
			t.Errorf("diff table should flag the regression:\n%s", out.String())
		}
	})

	t.Run("json_format", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-diff", "-format", "json", old, old}, &out, &out); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Metrics   []diffMetric `json:"metrics"`
			Regressed int          `json:"regressed"`
		}
		if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
			t.Fatalf("diff JSON invalid: %v\n%s", err, out.String())
		}
		if doc.Regressed != 0 || len(doc.Metrics) == 0 {
			t.Errorf("self-diff: regressed=%d metrics=%d", doc.Regressed, len(doc.Metrics))
		}
	})
}

func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.jsonl")
	if err := os.WriteFile(garbage, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	for _, args := range [][]string{
		{},
		{empty},
		{garbage},
		{"-format", "yaml", empty},
		{"-diff", empty},
		{filepath.Join(dir, "missing.jsonl")},
	} {
		if err := run(args, &sink, &sink); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
