// explorefaultd is the campaign daemon: a long-running HTTP/JSON job
// server that accepts discovery, assessment and sweep jobs, schedules
// them FIFO across a worker pool under per-tenant quotas, and streams
// each job's run events over SSE. Job state is durable — killing the
// daemon mid-job and restarting it on the same data directory resumes
// in-flight jobs from their engine checkpoints, and a resumed job's
// outcome is bit-identical to an uninterrupted run.
//
// Examples:
//
//	go run ./cmd/explorefaultd -data /var/lib/explorefault
//	curl -s localhost:8750/jobs -d '{"type":"discover","config":{"cipher":"gift64","round":25,"episodes":500}}'
//	curl -s localhost:8750/jobs/j-000000
//	curl -N localhost:8750/jobs/j-000000/events
//	curl -s localhost:8750/jobs/j-000000/report      # obsreport markdown for one job
//	curl -s localhost:8750/stats                     # per-tenant cost aggregates
//	curl -s localhost:8750/metrics?format=prom       # labeled Prometheus scrape
//	curl -s localhost:8750/readyz                    # 200 accepting, 503 draining
//
// The daemon's /metrics endpoint serves the fleet view: scheduler
// instruments plus every job's metrics folded under
// tenant/kind/cipher/fault_model labels, with process runtime telemetry
// (goroutines, heap, GC pauses) sampled at scrape time. Each finished
// job carries a usage record (wall/CPU/queue seconds, work counters,
// peak heap); obsreport -fleet folds the per-job event logs in the data
// directory into one fleet cost report offline.
//
// See README's "Serving campaigns" for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	explorefault "repro"
)

func main() {
	// First SIGINT/SIGTERM starts a graceful shutdown: in-flight jobs
	// stop at their next engine boundary with checkpoints written, and
	// their records stay resumable. A second signal force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "explorefaultd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it binds the listener, serves the job
// API until ctx is cancelled, then drains gracefully.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("explorefaultd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8750", "listen address for the job API")
	dataDir := fs.String("data", "", "state directory: durable job table, per-job checkpoints, event logs and artifacts (required)")
	workers := fs.Int("workers", 2, "job worker-pool size (each job's own campaign parallelism is set in its config)")
	tenantQuota := fs.Int("tenant-quota", 0, "max concurrently running jobs per tenant (0 = worker count)")
	eventsPath := fs.String("events", "", "write daemon-level JSONL lifecycle events to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("-data is required (the daemon state directory)")
	}

	metrics := explorefault.NewMetrics()
	// A daemon always serves /metrics, so process health telemetry is on;
	// it samples at scrape time only, so an unscrapped daemon pays nothing.
	metrics.EnableRuntimeMetrics()
	var events *explorefault.EventEmitter
	if *eventsPath != "" {
		var err error
		if events, err = explorefault.OpenEventLog(*eventsPath); err != nil {
			return err
		}
		defer events.Close()
	}

	srv, err := explorefault.NewJobServer(explorefault.JobServerConfig{
		DataDir:     *dataDir,
		Workers:     *workers,
		TenantQuota: *tenantQuota,
		Metrics:     metrics,
		Events:      events,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "explorefaultd listening on http://%s (data %s, %d workers)\n",
		ln.Addr(), *dataDir, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "explorefaultd: shutting down (jobs checkpoint and stay resumable)")
	// Stop accepting connections, give in-flight requests a moment (SSE
	// streams won't finish on their own — Close cuts them), then settle
	// the job server so every interrupted job has its checkpoint written.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	httpSrv.Close()
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "explorefaultd: stopped")
	return nil
}
