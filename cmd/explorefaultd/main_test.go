package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{},                         // missing -data
		{"-data", ""},              // empty -data
		{"-data", "x", "-workers"}, // missing value
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(context.Background(), args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunEndToEnd boots the daemon on an ephemeral port, drives one tiny
// assess job through POST → poll → SSE → DELETE, and shuts down on
// context cancel.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := newLinePipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "localhost:0", "-data", dir, "-workers", "1"}, pw, &bytes.Buffer{})
	}()

	// The first stdout line carries the bound address.
	var base string
	select {
	case line := <-pr:
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("no address in startup line %q", line)
		}
		base = strings.Fields(line[i:])[0]
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}

	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(
		`{"type":"assess","config":{"cipher":"gift64","round":25,"groups":[0],"samples":128,"seed":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d", resp.StatusCode)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State == "done" {
			break
		}
		if job.State == "failed" || job.State == "cancelled" {
			t.Fatalf("job settled %s", job.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SSE on the finished job terminates with a done frame.
	resp, err = http.Get(base + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() == "event: done" {
			sawDone = true
		}
	}
	resp.Body.Close()
	if !sawDone {
		t.Fatal("SSE stream never sent the done frame")
	}

	// Observability surface: readiness, fleet stats, the per-job report
	// and the labeled Prometheus scrape all work on a live daemon.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz status = %d, want 200 while accepting", resp.StatusCode)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Totals struct {
			Jobs int `json:"jobs"`
		} `json:"totals"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Totals.Jobs != 1 {
		t.Fatalf("GET /stats totals.jobs = %d, want 1", stats.Totals.Jobs)
	}

	resp, err = http.Get(base + "/jobs/" + job.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := readAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id}/report status = %d", resp.StatusCode)
	}
	if !strings.Contains(report, "# Run report:") || !strings.Contains(report, "job cost:") {
		t.Fatalf("report missing expected sections:\n%s", report)
	}

	resp, err = http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := readAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`server_jobs_done_total{kind="assess",tenant=""} 1`,
		`cipher="gift64",fault_model="default",kind="assess",tenant=""`,
		"runtime_goroutines",
		"# TYPE server_job_seconds histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus scrape missing %q", want)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never shut down")
	}
}

func readAll(r io.Reader) (string, error) {
	b, err := io.ReadAll(r)
	return string(b), err
}

// newLinePipe returns a channel of written lines backed by an io.Writer.
func newLinePipe() (<-chan string, *lineWriter) {
	ch := make(chan string, 16)
	return ch, &lineWriter{ch: ch}
}

type lineWriter struct {
	ch  chan string
	buf []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		select {
		case w.ch <- string(w.buf[:i]):
		default:
		}
		w.buf = w.buf[i+1:]
	}
}
