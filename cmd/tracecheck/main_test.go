package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodTrace = `{"traceEvents":[
  {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"x"}},
  {"name":"run","ph":"X","ts":0,"dur":100,"pid":1,"tid":0},
  {"name":"episode","ph":"X","ts":10,"dur":20,"pid":1,"tid":1}
],"displayTimeUnit":"ms"}`

func TestTracecheck(t *testing.T) {
	good := write(t, "good.json", goodTrace)

	var out bytes.Buffer
	if err := run([]string{good, "run", "episode"}, &out); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if !strings.Contains(out.String(), "2 spans") {
		t.Errorf("span count missing: %s", out.String())
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing span", []string{good, "run", "ppo_update"}, "required spans missing"},
		{"not json", []string{write(t, "bad.json", "{")}, "not a Chrome trace"},
		{"empty doc", []string{write(t, "empty.json", `{"traceEvents":[]}`)}, "no trace events"},
		{"only metadata", []string{write(t, "meta.json",
			`{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0}]}`)}, `no complete ("X") spans`},
		{"bad phase", []string{write(t, "phase.json",
			`{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0}]}`)}, "unexpected phase"},
		{"negative dur", []string{write(t, "neg.json",
			`{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]}`)}, "negative ts/dur"},
		{"no args", nil, "usage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sink bytes.Buffer
			err := run(tc.args, &sink)
			if err == nil {
				t.Fatal("should fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q should contain %q", err, tc.want)
			}
		})
	}
}
