// tracecheck validates a Chrome trace-event JSON file written with
// -trace: the document must parse, every complete ("X") event must have
// a non-negative duration, and each span name given as an extra argument
// must appear at least once. CI runs it over the smoke run's trace so a
// schema regression fails the build before anyone loads a broken file
// into Perfetto.
//
//	go run ./cmd/tracecheck trace.json run session episode
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: args are the trace path followed by
// required span names.
func run(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return errors.New("usage: tracecheck trace.json [required-span-name ...]")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a Chrome trace document: %v", args[0], err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", args[0])
	}
	spans := 0
	seen := map[string]int{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 || ev.TS < 0 {
				return fmt.Errorf("%s: event %d (%s): negative ts/dur", args[0], i, ev.Name)
			}
			spans++
			seen[ev.Name]++
		case "M":
			// Metadata (process/thread names) carries no timing.
		default:
			return fmt.Errorf("%s: event %d (%s): unexpected phase %q", args[0], i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("%s: no complete (\"X\") spans", args[0])
	}
	var missing []string
	for _, want := range args[1:] {
		if seen[want] == 0 {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: required spans missing: %v", args[0], missing)
	}
	fmt.Fprintf(stdout, "tracecheck: %s ok (%d spans, %d names)\n", args[0], spans, len(seen))
	return nil
}
