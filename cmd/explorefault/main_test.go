package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-key", "zz"},                          // invalid hex
		{"-cipher", "nosuch"},                   // unknown cipher
		{"-events", "/dev/null/nope/run.jsonl"}, // unopenable events file
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(context.Background(), args, &out, &errb); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-cipher", "gift64", "-round", "25",
		"-episodes", "8", "-samples", "64", "-seed", "1",
		"-events", evPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"cipher: gift64, round 25", "converged pattern:", "training census"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected >= 3 events, got %d", len(lines))
	}
	var first, last struct {
		TS    string `json:"ts"`
		Seq   uint64 `json:"seq"`
		Event string `json:"event"`
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d not JSON: %v", i, err)
		}
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Event != "run_started" {
		t.Errorf("first event = %q, want run_started", first.Event)
	}
	if last.Event != "emitter_stats" {
		t.Errorf("last event = %q, want the emitter's closing stats line", last.Event)
	}
	var prev struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-2]), &prev); err != nil {
		t.Fatal(err)
	}
	if prev.Event != "run_finished" {
		t.Errorf("second-to-last event = %q, want run_finished", prev.Event)
	}
	if first.TS == "" || first.Seq != 0 {
		t.Errorf("first event envelope: ts=%q seq=%d", first.TS, first.Seq)
	}
	if last.Seq != uint64(len(lines)-1) {
		t.Errorf("last seq = %d, want %d (gap-free 0-based sequence)", last.Seq, len(lines)-1)
	}
}

// TestRunInterruptAndResume drives the CLI body the way a SIGINT does:
// cancel mid-run, then rerun with -resume and require the same converged
// pattern an uninterrupted run prints. The event log of the interrupted
// run must still be complete, parseable JSONL.
func TestRunInterruptAndResume(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "train.ckpt")
	evPath := filepath.Join(dir, "run.jsonl")
	args := func(extra ...string) []string {
		return append([]string{
			"-cipher", "gift64", "-round", "25",
			"-episodes", "12", "-samples", "64", "-seed", "3",
		}, extra...)
	}

	var ref bytes.Buffer
	if err := run(context.Background(), args(), &ref, io.Discard); err != nil {
		t.Fatal(err)
	}

	// Interrupt after ~200ms — partway through the 12-episode run on most
	// machines, and the eager initial checkpoint covers the rest.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var out, errb bytes.Buffer
	err := run(ctx, args("-checkpoint", ckPath, "-checkpoint-every", "1", "-events", evPath), &out, &errb)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	if _, statErr := os.Stat(ckPath); statErr != nil {
		t.Fatalf("no checkpoint after interrupted run: %v", statErr)
	}
	// Every event line must parse — the log is closed cleanly, never
	// truncated mid-record.
	data, readErr := os.ReadFile(evPath)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d not JSON after interrupt: %v\n%s", i, err, line)
		}
	}

	var resumed bytes.Buffer
	if err := run(context.Background(), args("-checkpoint", ckPath, "-resume"), &resumed, io.Discard); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	pick := func(s, prefix string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, prefix) {
				return line
			}
		}
		t.Fatalf("no %q line in output:\n%s", prefix, s)
		return ""
	}
	if got, want := pick(resumed.String(), "converged pattern:"), pick(ref.String(), "converged pattern:"); got != want {
		t.Errorf("resumed converged line %q, want %q", got, want)
	}
}

func TestRunResumeRequiresCheckpoint(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-resume"}, &out, &errb); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}
