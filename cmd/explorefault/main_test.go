package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-key", "zz"},            // invalid hex
		{"-cipher", "nosuch"},     // unknown cipher
		{"-events", "/dev/null/nope/run.jsonl"}, // unopenable events file
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	err := run([]string{
		"-cipher", "gift64", "-round", "25",
		"-episodes", "8", "-samples", "64", "-seed", "1",
		"-events", evPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"cipher: gift64, round 25", "converged pattern:", "training census"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected >= 3 events, got %d", len(lines))
	}
	var first, last struct {
		TS    string `json:"ts"`
		Seq   uint64 `json:"seq"`
		Event string `json:"event"`
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d not JSON: %v", i, err)
		}
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Event != "run_started" {
		t.Errorf("first event = %q, want run_started", first.Event)
	}
	if last.Event != "run_finished" {
		t.Errorf("last event = %q, want run_finished", last.Event)
	}
	if first.TS == "" || first.Seq != 0 {
		t.Errorf("first event envelope: ts=%q seq=%d", first.TS, first.Seq)
	}
	if last.Seq != uint64(len(lines)-1) {
		t.Errorf("last seq = %d, want %d (gap-free 0-based sequence)", last.Seq, len(lines)-1)
	}
}
