// explorefault is the command-line front end of the discovery framework:
// it trains the RL agent against a chosen cipher and round (optionally
// behind the duplication countermeasure) and prints the converged fault
// pattern, the verified fault models, and the training census.
//
// Examples:
//
//	go run ./cmd/explorefault -cipher gift64 -round 25 -episodes 1000
//	go run ./cmd/explorefault -cipher aes128 -round 8 -episodes 2000
//	go run ./cmd/explorefault -cipher aes128 -round 9 -protected
//	go run ./cmd/explorefault -cipher gift64 -round 25 \
//	    -events run.jsonl -metrics-addr localhost:6060
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	explorefault "repro"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/report"
)

func main() {
	// First SIGINT/SIGTERM cancels the run context: the session stops at
	// the next episode boundary, writes a final checkpoint, and the event
	// log and metrics endpoint are flushed and closed on the way out. A
	// second signal restores default handling, so Ctrl-C twice force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "explorefault:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: it parses args, executes the discovery
// session, and writes human output to stdout and diagnostics to stderr.
// Cancelling ctx stops the session at the next episode boundary.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("explorefault", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "gift64", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	round := fs.Int("round", 25, "fault-injection round (1-based)")
	episodes := fs.Int("episodes", 1000, "training episode budget")
	protected := fs.Bool("protected", false, "evaluate the duplication countermeasure (ciphertext-only t-test)")
	faultTypes := fs.String("fault-type", "xor", "typed fault model(s) the agent may inject, comma-separated: xor, stuck-at-0, stuck-at-1, biased-and, random-byte, random-nibble")
	oracleName := fs.String("oracle", "welch", "leakage oracle: welch (t-test on ciphertext differentials) or sifa (ineffective-fault conditioning)")
	samples := fs.Int("samples", 512, "t-test samples per reward evaluation")
	workers := fs.Int("workers", 0, "fault-campaign worker goroutines per oracle (0 = GOMAXPROCS; results are identical for every value)")
	scalar := fs.Bool("scalar", false, "force the scalar reference path instead of the batch cipher kernel (bit-identical, slower)")
	cache := fs.Bool("cache", true, "memoize oracle evaluations (exact; disable to pay full simulation cost per episode)")
	seed := fs.Uint64("seed", 1, "experiment seed")
	keyHex := fs.String("key", "", "cipher key in hex (default: random from seed)")
	eventsPath := fs.String("events", "", "write structured JSONL run events to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON span timeline to this file (open in ui.perfetto.dev)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	checkpointPath := fs.String("checkpoint", "", "snapshot training state to this file (atomic; written at update boundaries and on interrupt)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "episodes between periodic checkpoint writes (0 = default cadence)")
	resume := fs.Bool("resume", false, "restore training state from -checkpoint before running (missing file starts fresh)")
	verbose := fs.Bool("v", false, "print training progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var key []byte
	if *keyHex != "" {
		var err error
		if key, err = hex.DecodeString(*keyHex); err != nil {
			return fmt.Errorf("bad -key: %v", err)
		}
	}

	if *resume && *checkpointPath == "" {
		return errors.New("-resume requires -checkpoint")
	}

	faultModels, err := parseFaultTypes(*faultTypes)
	if err != nil {
		return err
	}
	oracle, err := explorefault.ParseOracle(*oracleName)
	if err != nil {
		return err
	}

	metrics, events, cleanup, err := obs.Setup(*metricsAddr, *eventsPath, stderr)
	if err != nil {
		return err
	}
	defer cleanup()
	tracer, err := trace.Open(*tracePath)
	if err != nil {
		return err
	}
	runSpan, ctx := tracer.StartRoot(ctx, trace.SpanRun)
	runSpan.SetAttr("binary", "explorefault")
	runSpan.SetAttr("cipher", *cipher)
	runSpan.SetAttr("round", *round)
	runSpan.SetAttr("fault_types", *faultTypes)
	runSpan.SetAttr("oracle", oracle.String())
	// The trace document is written at Close; a truncated or unwritable
	// trace surfaces as the run error rather than vanishing.
	defer func() {
		runSpan.End()
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	events.Emit(obs.EventRunStarted, map[string]any{
		"binary": "explorefault", "cipher": *cipher, "round": *round,
		"episodes": *episodes, "protected": *protected, "seed": *seed,
		"fault_types": *faultTypes, "oracle": oracle.String(),
	})

	cfg := explorefault.DiscoverConfig{
		Cipher:          *cipher,
		Key:             key,
		Round:           *round,
		Protected:       *protected,
		FaultModels:     faultModels,
		Oracle:          oracle,
		Episodes:        *episodes,
		Samples:         *samples,
		Workers:         *workers,
		NoBatch:         *scalar,
		NoOracleCache:   !*cache,
		Seed:            *seed,
		Metrics:         metrics,
		Events:          events,
		Checkpoint:      *checkpointPath,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
	}
	if *verbose {
		cfg.Progress = func(p explorefault.Progress) {
			if p.Episodes%100 < 8 {
				fmt.Fprintf(stderr,
					"episode %5d: exploitable %.2f, avg bits %5.1f, best %3d, entropy %.2f\n",
					p.Episodes, p.AvgLeaky, p.AvgBits, p.BestLeakyN, p.Entropy)
			}
		}
	}

	start := time.Now()
	res, err := explorefault.DiscoverContext(ctx, cfg)
	if err != nil {
		events.Emit(obs.EventRunFinished, map[string]any{"binary": "explorefault", "error": err.Error()})
		if errors.Is(err, context.Canceled) && *checkpointPath != "" {
			fmt.Fprintf(stderr, "interrupted; training state saved to %s (resume with -resume)\n", *checkpointPath)
		}
		return err
	}

	fmt.Fprintf(stdout, "cipher: %s, round %d, protected=%v, key %x\n", *cipher, *round, *protected, res.Key)
	fmt.Fprintf(stdout, "trained %d episodes in %s (%.0f episodes/min, %.0f steps/min)\n",
		res.Episodes, time.Since(start).Round(time.Second), res.EpisodesPerMin, res.StepsPerMin)
	if lookups := res.Cache.Hits + res.Cache.Misses; lookups > 0 {
		fmt.Fprintf(stdout, "oracle cache: %d hits / %d lookups (%.0f%% hit rate, %d evictions)\n",
			res.Cache.Hits, lookups, 100*res.Cache.HitRate(), res.Cache.Evictions)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "converged pattern: %s\n", res.Converged.String())
	if len(faultModels) > 1 {
		fmt.Fprintf(stdout, "  fault model: %s\n", res.ConvergedModel)
	}
	fmt.Fprintf(stdout, "  leakage t = %.1f, exploitable = %v\n\n", res.ConvergedT, res.ConvergedLeaky)

	if len(res.Models) > 0 {
		tb := report.NewTable("verified fault models", "model", "t statistic")
		for _, m := range res.Models {
			tb.AddRow(m.String(), fmt.Sprintf("%.1f", m.T))
		}
		tb.Render(stdout)
	}

	tb := report.NewTable("training census (per 1000-episode window)",
		"episodes", "exploitable", "1-bit", "multi-bit", "avg bits")
	for _, b := range res.Buckets {
		tb.AddRow(fmt.Sprintf("%d-%d", b.StartEpisode, b.EndEpisode),
			b.LeakyEpisodes, b.SingleBitModels, b.MultiBitModels,
			fmt.Sprintf("%.1f", b.AvgBitsSelected))
	}
	tb.Render(stdout)

	events.Emit(obs.EventRunFinished, map[string]any{
		"binary": "explorefault", "episodes": res.Episodes,
		"converged_leaky": res.ConvergedLeaky, "models": len(res.Models),
	})
	return nil
}

// parseFaultTypes parses the comma-separated -fault-type list.
func parseFaultTypes(s string) ([]explorefault.FaultModel, error) {
	var out []explorefault.FaultModel
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		fm, err := explorefault.ParseFaultModel(name)
		if err != nil {
			return nil, fmt.Errorf("bad -fault-type: %w", err)
		}
		out = append(out, fm)
	}
	if len(out) == 0 {
		return nil, errors.New("bad -fault-type: empty list")
	}
	return out, nil
}
