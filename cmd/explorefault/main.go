// explorefault is the command-line front end of the discovery framework:
// it trains the RL agent against a chosen cipher and round (optionally
// behind the duplication countermeasure) and prints the converged fault
// pattern, the verified fault models, and the training census.
//
// Examples:
//
//	go run ./cmd/explorefault -cipher gift64 -round 25 -episodes 1000
//	go run ./cmd/explorefault -cipher aes128 -round 8 -episodes 2000
//	go run ./cmd/explorefault -cipher aes128 -round 9 -protected
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	explorefault "repro"
	"repro/internal/report"
)

func main() {
	cipher := flag.String("cipher", "gift64", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	round := flag.Int("round", 25, "fault-injection round (1-based)")
	episodes := flag.Int("episodes", 1000, "training episode budget")
	protected := flag.Bool("protected", false, "evaluate the duplication countermeasure (ciphertext-only t-test)")
	samples := flag.Int("samples", 512, "t-test samples per reward evaluation")
	workers := flag.Int("workers", 0, "fault-campaign worker goroutines per oracle (0 = GOMAXPROCS; results are identical for every value)")
	scalar := flag.Bool("scalar", false, "force the scalar reference path instead of the batch cipher kernel (bit-identical, slower)")
	cache := flag.Bool("cache", true, "memoize oracle evaluations (exact; disable to pay full simulation cost per episode)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	keyHex := flag.String("key", "", "cipher key in hex (default: random from seed)")
	verbose := flag.Bool("v", false, "print training progress")
	flag.Parse()

	var key []byte
	if *keyHex != "" {
		var err error
		if key, err = hex.DecodeString(*keyHex); err != nil {
			log.Fatalf("bad -key: %v", err)
		}
	}

	cfg := explorefault.DiscoverConfig{
		Cipher:        *cipher,
		Key:           key,
		Round:         *round,
		Protected:     *protected,
		Episodes:      *episodes,
		Samples:       *samples,
		Workers:       *workers,
		NoBatch:       *scalar,
		NoOracleCache: !*cache,
		Seed:          *seed,
	}
	if *verbose {
		cfg.Progress = func(p explorefault.Progress) {
			if p.Episodes%100 < 8 {
				fmt.Fprintf(os.Stderr,
					"episode %5d: exploitable %.2f, avg bits %5.1f, best %3d, entropy %.2f\n",
					p.Episodes, p.AvgLeaky, p.AvgBits, p.BestLeakyN, p.Entropy)
			}
		}
	}

	start := time.Now()
	res, err := explorefault.Discover(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cipher: %s, round %d, protected=%v, key %x\n", *cipher, *round, *protected, res.Key)
	fmt.Printf("trained %d episodes in %s (%.0f episodes/min, %.0f steps/min)\n",
		res.Episodes, time.Since(start).Round(time.Second), res.EpisodesPerMin, res.StepsPerMin)
	if lookups := res.Cache.Hits + res.Cache.Misses; lookups > 0 {
		fmt.Printf("oracle cache: %d hits / %d lookups (%.0f%% hit rate, %d evictions)\n",
			res.Cache.Hits, lookups, 100*res.Cache.HitRate(), res.Cache.Evictions)
	}
	fmt.Println()
	fmt.Printf("converged pattern: %s\n", res.Converged.String())
	fmt.Printf("  leakage t = %.1f, exploitable = %v\n\n", res.ConvergedT, res.ConvergedLeaky)

	if len(res.Models) > 0 {
		tb := report.NewTable("verified fault models", "model", "t statistic")
		for _, m := range res.Models {
			tb.AddRow(m.String(), fmt.Sprintf("%.1f", m.T))
		}
		tb.Render(os.Stdout)
	}

	tb := report.NewTable("training census (per 1000-episode window)",
		"episodes", "exploitable", "1-bit", "multi-bit", "avg bits")
	for _, b := range res.Buckets {
		tb.AddRow(fmt.Sprintf("%d-%d", b.StartEpisode, b.EndEpisode),
			b.LeakyEpisodes, b.SingleBitModels, b.MultiBitModels,
			fmt.Sprintf("%.1f", b.AvgBitsSelected))
	}
	tb.Render(os.Stdout)
}
