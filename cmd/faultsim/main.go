// faultsim assesses a single fault pattern: it runs the fault simulation
// and the higher-order t-test oracle, and prints the leakage verdict plus
// the round-by-round propagation profile.
//
// Patterns are given either as raw bit indices or as group indices
// (nibbles/bytes, matching the cipher's S-box width):
//
//	go run ./cmd/faultsim -cipher aes128 -round 8 -bytes 2,7,8,13
//	go run ./cmd/faultsim -cipher gift64 -round 25 -nibbles 8,9,10,11,12,14
//	go run ./cmd/faultsim -cipher aes128 -round 8 -bits 29,34,35,38,77,118
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	explorefault "repro"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	cipher := flag.String("cipher", "aes128", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	round := flag.Int("round", 8, "fault-injection round (1-based)")
	bits := flag.String("bits", "", "comma-separated state bit indices")
	nibbles := flag.String("nibbles", "", "comma-separated nibble indices")
	bytesFlag := flag.String("bytes", "", "comma-separated byte indices")
	samples := flag.Int("samples", 2048, "plaintexts per t-test")
	workers := flag.Int("workers", 0, "fault-campaign worker goroutines (0 = GOMAXPROCS; results are identical for every value)")
	scalar := flag.Bool("scalar", false, "force the scalar reference path instead of the batch cipher kernel (bit-identical, slower)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	info, err := explorefault.LookupCipher(*cipher)
	if err != nil {
		log.Fatal(err)
	}
	stateBits := 8 * info.BlockBytes

	pattern := explorefault.NewPattern(stateBits)
	if vs, err := parseInts(*bits); err != nil {
		log.Fatal(err)
	} else {
		for _, b := range vs {
			pattern.Set(b)
		}
	}
	if vs, err := parseInts(*nibbles); err != nil {
		log.Fatal(err)
	} else if len(vs) > 0 {
		p := explorefault.PatternFromGroups(stateBits, 4, vs...)
		pattern.Or(&p)
	}
	if vs, err := parseInts(*bytesFlag); err != nil {
		log.Fatal(err)
	} else if len(vs) > 0 {
		p := explorefault.PatternFromGroups(stateBits, 8, vs...)
		pattern.Or(&p)
	}
	if pattern.IsZero() {
		log.Fatal("empty pattern: pass -bits, -nibbles or -bytes")
	}

	fmt.Printf("cipher %s, fault at round %d, pattern %s (%d bits)\n\n",
		*cipher, *round, pattern.String(), pattern.Count())

	for order := 1; order <= 2; order++ {
		a, err := explorefault.Assess(pattern, explorefault.AssessConfig{
			Cipher: *cipher, Round: *round, Samples: *samples,
			FixedOrder: order, Workers: *workers, NoBatch: *scalar, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("order-%d t-test: t = %8.2f at %s\n", order, a.T, a.Point)
	}
	full, err := explorefault.Assess(pattern, explorefault.AssessConfig{
		Cipher: *cipher, Round: *round, Samples: *samples,
		Workers: *workers, NoBatch: *scalar, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: t = %.2f (threshold %.1f) -> exploitable = %v\n\n",
		full.T, full.Threshold, full.Leaky)

	prof, err := explorefault.Propagate(pattern, *cipher, nil, *round, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("propagation profile (round inputs after injection):")
	for r := *round + 1; r <= info.Rounds; r++ {
		fmt.Printf("  round %2d: %6.2f active groups, %.2f bits entropy, max |corr| %.3f\n",
			r, prof.ActiveGroups[r-1], prof.Entropy[r-1], prof.MaxAbsCorr[r-1])
	}
	if prof.DistinguisherRound > 0 {
		fmt.Printf("deepest distinguisher: round %d input\n", prof.DistinguisherRound)
	} else {
		fmt.Println("no distinguisher found after the injection round")
	}
}
