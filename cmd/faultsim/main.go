// faultsim assesses a single fault pattern: it runs the fault simulation
// and the higher-order t-test oracle, and prints the leakage verdict plus
// the round-by-round propagation profile.
//
// Patterns are given either as raw bit indices or as group indices
// (nibbles/bytes, matching the cipher's S-box width):
//
//	go run ./cmd/faultsim -cipher aes128 -round 8 -bytes 2,7,8,13
//	go run ./cmd/faultsim -cipher gift64 -round 25 -nibbles 8,9,10,11,12,14
//	go run ./cmd/faultsim -cipher aes128 -round 8 -bits 29,34,35,38,77,118
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	explorefault "repro"
	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// stageCheckpointKind tags faultsim stage checkpoints inside the envelope
// of internal/checkpoint (distinct from explore-session checkpoints).
//
// Per-stage results (order-1, order-2, full verdict, propagation) live in
// a checkpoint.Stages store so an interrupted multi-stage run resumes
// after the last finished stage instead of repeating multi-second
// campaigns. The store key is the canonical argument string; a file
// written for different arguments is discarded, not misapplied. Workers
// and -scalar are excluded from the key because results are bit-identical
// across them.
const stageCheckpointKind = "faultsim-stages"

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	// First SIGINT/SIGTERM cancels the run context: the campaign stops at
	// the next shard boundary and the event log is flushed and closed on
	// the way out. A second signal force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: it parses args, runs the assessment and
// propagation profile, and writes human output to stdout. Cancelling ctx
// stops the in-flight campaign at the next shard boundary.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "aes128", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	round := fs.Int("round", 8, "fault-injection round (1-based)")
	bits := fs.String("bits", "", "comma-separated state bit indices")
	nibbles := fs.String("nibbles", "", "comma-separated nibble indices")
	bytesFlag := fs.String("bytes", "", "comma-separated byte indices")
	samples := fs.Int("samples", 2048, "plaintexts per t-test")
	faultType := fs.String("fault-type", "xor", "typed fault model: xor, stuck-at-0, stuck-at-1, biased-and, random-byte, random-nibble")
	oracleName := fs.String("oracle", "welch", "leakage oracle: welch (t-test on ciphertext differentials) or sifa (ineffective-fault conditioning)")
	workers := fs.Int("workers", 0, "fault-campaign worker goroutines (0 = GOMAXPROCS; results are identical for every value)")
	scalar := fs.Bool("scalar", false, "force the scalar reference path instead of the batch cipher kernel (bit-identical, slower)")
	seed := fs.Uint64("seed", 1, "experiment seed")
	eventsPath := fs.String("events", "", "write structured JSONL run events to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON span timeline to this file (open in ui.perfetto.dev)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	checkpointPath := fs.String("checkpoint", "", "persist per-stage results to this file; rerunning with the same arguments resumes after the last finished stage")
	if err := fs.Parse(args); err != nil {
		return err
	}

	info, err := explorefault.LookupCipher(*cipher)
	if err != nil {
		return err
	}
	stateBits := 8 * info.BlockBytes

	pattern := explorefault.NewPattern(stateBits)
	vs, err := parseInts(*bits)
	if err != nil {
		return fmt.Errorf("bad -bits: %v", err)
	}
	for _, b := range vs {
		pattern.Set(b)
	}
	if vs, err := parseInts(*nibbles); err != nil {
		return fmt.Errorf("bad -nibbles: %v", err)
	} else if len(vs) > 0 {
		p := explorefault.PatternFromGroups(stateBits, 4, vs...)
		pattern.Or(&p)
	}
	if vs, err := parseInts(*bytesFlag); err != nil {
		return fmt.Errorf("bad -bytes: %v", err)
	} else if len(vs) > 0 {
		p := explorefault.PatternFromGroups(stateBits, 8, vs...)
		pattern.Or(&p)
	}
	if pattern.IsZero() {
		return errors.New("empty pattern: pass -bits, -nibbles or -bytes")
	}
	faultModel, err := explorefault.ParseFaultModel(*faultType)
	if err != nil {
		return fmt.Errorf("bad -fault-type: %v", err)
	}
	oracle, err := explorefault.ParseOracle(*oracleName)
	if err != nil {
		return fmt.Errorf("bad -oracle: %v", err)
	}

	metrics, events, cleanup, err := obs.Setup(*metricsAddr, *eventsPath, stderr)
	if err != nil {
		return err
	}
	defer cleanup()
	tracer, err := trace.Open(*tracePath)
	if err != nil {
		return err
	}
	runSpan, ctx := tracer.StartRoot(ctx, trace.SpanRun)
	runSpan.SetAttr("binary", "faultsim")
	runSpan.SetAttr("cipher", *cipher)
	runSpan.SetAttr("round", *round)
	runSpan.SetAttr("fault_model", faultModel.String())
	runSpan.SetAttr("oracle", oracle.String())
	// The trace document is written at Close; a truncated or unwritable
	// trace surfaces as the run error rather than vanishing.
	defer func() {
		runSpan.End()
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	events.Emit(obs.EventRunStarted, map[string]any{
		"binary": "faultsim", "cipher": *cipher, "round": *round,
		"bits": pattern.Count(), "samples": *samples, "seed": *seed,
		"fault_model": faultModel.String(), "oracle": oracle.String(),
	})

	// Stage checkpointing: load any prior partial run for these exact
	// arguments, then persist after every finished stage so an interrupt
	// costs at most one stage. An empty -checkpoint yields an in-memory
	// store with the same control flow.
	key := fmt.Sprintf("%s|r%d|%s|s=%d|m=%s|o=%s|seed=%d",
		*cipher, *round, pattern.String(), *samples, faultModel, oracle, *seed)
	stages, err := checkpoint.OpenStages(*checkpointPath, stageCheckpointKind, key)
	if err != nil {
		return fmt.Errorf("loading -checkpoint: %w", err)
	}
	putStage := func(stage string, val any) error {
		if err := stages.Put(stage, val); err != nil {
			return err
		}
		if *checkpointPath != "" {
			events.Emit(obs.EventCheckpointSaved, map[string]any{
				"binary": "faultsim", "stage": stage, "path": *checkpointPath,
			})
		}
		return nil
	}
	assessStage := func(stage string, fixedOrder int) (explorefault.Assessment, error) {
		var a explorefault.Assessment
		if stages.Done(stage, &a) {
			return a, nil
		}
		// One span per stage, named after it, so the trace timeline shows
		// where a multi-stage run spent its time (and which stages a
		// resumed run skipped).
		ssp, sctx := trace.StartSpan(ctx, stage)
		a, err := explorefault.AssessContext(sctx, pattern, explorefault.AssessConfig{
			Cipher: *cipher, Round: *round, Samples: *samples,
			FaultModel: faultModel, Oracle: oracle,
			FixedOrder: fixedOrder, Workers: *workers, NoBatch: *scalar, Seed: *seed,
			Metrics: metrics, Events: events,
		})
		ssp.SetAttr("t", a.T)
		ssp.End()
		if err != nil {
			return a, err
		}
		return a, putStage(stage, &a)
	}

	fmt.Fprintf(stdout, "cipher %s, fault at round %d, pattern %s (%d bits), model %s, oracle %s\n\n",
		*cipher, *round, pattern.String(), pattern.Count(), faultModel, oracle)

	for order := 1; order <= 2; order++ {
		a, err := assessStage(fmt.Sprintf("order%d", order), order)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "order-%d t-test: t = %8.2f at %s\n", order, a.T, a.Point)
	}
	full, err := assessStage("full", 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "verdict: t = %.2f (threshold %.1f) -> exploitable = %v\n\n",
		full.T, full.Threshold, full.Leaky)

	var prof *explorefault.PropagationProfile
	if !stages.Done("propagation", &prof) {
		if err := ctx.Err(); err != nil {
			return err
		}
		psp, _ := trace.StartSpan(ctx, "propagation")
		prof, err = explorefault.PropagateModel(pattern, *cipher, nil, faultModel, *round, *samples, *seed)
		psp.End()
		if err != nil {
			return err
		}
		if err := putStage("propagation", prof); err != nil {
			return err
		}
	}
	fmt.Fprintln(stdout, "propagation profile (round inputs after injection):")
	for r := *round + 1; r <= info.Rounds; r++ {
		fmt.Fprintf(stdout, "  round %2d: %6.2f active groups, %.2f bits entropy, max |corr| %.3f\n",
			r, prof.ActiveGroups[r-1], prof.Entropy[r-1], prof.MaxAbsCorr[r-1])
	}
	if prof.DistinguisherRound > 0 {
		fmt.Fprintf(stdout, "deepest distinguisher: round %d input\n", prof.DistinguisherRound)
	} else {
		fmt.Fprintln(stdout, "no distinguisher found after the injection round")
	}

	events.Emit(obs.EventRunFinished, map[string]any{
		"binary": "faultsim", "t": full.T, "leaky": full.Leaky,
		"distinguisher_round": prof.DistinguisherRound,
	})
	return nil
}
