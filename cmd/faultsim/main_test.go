package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-cipher", "nosuch", "-bits", "0"},
		{"-bits", "notanumber"},
		{"-cipher", "gift64"}, // empty pattern
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	err := run([]string{
		"-cipher", "gift64", "-round", "25", "-nibbles", "8,9",
		"-samples", "64", "-seed", "1", "-events", evPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"order-1 t-test", "order-2 t-test", "verdict:", "propagation profile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	kinds := make(map[string]int)
	for i, line := range lines {
		var e struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d not JSON: %v", i, err)
		}
		kinds[e.Event]++
	}
	if kinds["run_started"] != 1 || kinds["run_finished"] != 1 {
		t.Errorf("run event counts = %v", kinds)
	}
	// Three assessments (order 1, order 2, full) each emit a campaign pair.
	if kinds["campaign_started"] == 0 || kinds["campaign_started"] != kinds["campaign_finished"] {
		t.Errorf("campaign event counts = %v", kinds)
	}
}
