package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-cipher", "nosuch", "-bits", "0"},
		{"-bits", "notanumber"},
		{"-cipher", "gift64"}, // empty pattern
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(context.Background(), args, &out, &errb); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-cipher", "gift64", "-round", "25", "-nibbles", "8,9",
		"-samples", "64", "-seed", "1", "-events", evPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"order-1 t-test", "order-2 t-test", "verdict:", "propagation profile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	kinds := make(map[string]int)
	for i, line := range lines {
		var e struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("event line %d not JSON: %v", i, err)
		}
		kinds[e.Event]++
	}
	if kinds["run_started"] != 1 || kinds["run_finished"] != 1 {
		t.Errorf("run event counts = %v", kinds)
	}
	// Three assessments (order 1, order 2, full) each emit a campaign pair.
	if kinds["campaign_started"] == 0 || kinds["campaign_started"] != kinds["campaign_finished"] {
		t.Errorf("campaign event counts = %v", kinds)
	}
}

// TestRunStageCheckpoint: with -checkpoint, a cancelled run persists the
// stages it finished, and the rerun serves them from the file (campaign
// events only for the stages that actually execute) while printing the
// same verdicts.
func TestRunStageCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "stages.ckpt")
	args := []string{
		"-cipher", "gift64", "-round", "25", "-nibbles", "8,9",
		"-samples", "64", "-seed", "1", "-checkpoint", ckPath,
	}

	var ref bytes.Buffer
	if err := run(context.Background(), args, &ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no stage checkpoint written: %v", err)
	}

	// Rerun with identical arguments: all stages come from the file, so
	// no campaign runs at all.
	evPath := filepath.Join(dir, "rerun.jsonl")
	var out bytes.Buffer
	if err := run(context.Background(), append(args, "-events", evPath), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if out.String() != ref.String() {
		t.Errorf("checkpointed rerun output differs:\n%s\nwant:\n%s", out.String(), ref.String())
	}
	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "campaign_started") {
		t.Error("rerun re-executed campaigns despite a complete stage checkpoint")
	}

	// Different arguments must not reuse the file's results.
	var other bytes.Buffer
	if err := run(context.Background(), []string{
		"-cipher", "gift64", "-round", "25", "-nibbles", "8,10",
		"-samples", "64", "-seed", "1", "-checkpoint", ckPath,
	}, &other, io.Discard); err != nil {
		t.Fatal(err)
	}
	if other.String() == ref.String() {
		t.Error("stage checkpoint reused for a different pattern")
	}
}

// TestRunCancelledMidStages: cancellation surfaces as context.Canceled and
// leaves a loadable checkpoint holding the finished stages.
func TestRunCancelledMidStages(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "stages.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, []string{
		"-cipher", "gift64", "-round", "25", "-nibbles", "8,9",
		"-samples", "64", "-seed", "1", "-checkpoint", ckPath,
	}, &out, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
