package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: model x
BenchmarkCampaign/gift64-8   	      18	  63464410 ns/op	 1577265 B/op	   12424 allocs/op
BenchmarkCampaign/gift64-8   	      20	  61000000 ns/op	 1500000 B/op	   12000 allocs/op
BenchmarkOracle-8            	     100	   1000000 ns/op
PASS
`

func TestIngest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	err := run([]string{"-label", "before", "-o", out},
		strings.NewReader(benchOutput), &stdout, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.CPU != "model x" {
		t.Errorf("environment header: %+v", rec)
	}
	m := rec.Benchmarks["BenchmarkCampaign/gift64"]["before"]
	if m == nil {
		t.Fatalf("missing averaged entry: %+v", rec.Benchmarks)
	}
	if m.Runs != 2 || m.NsPerOp != (63464410+61000000)/2.0 {
		t.Errorf("averaging: %+v", m)
	}

	// Merging a second label preserves the first.
	err = run([]string{"-label", "after", "-o", out},
		strings.NewReader(benchOutput), &stdout, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(out)
	rec = Record{}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Benchmarks["BenchmarkCampaign/gift64"]["before"] == nil ||
		rec.Benchmarks["BenchmarkCampaign/gift64"]["after"] == nil {
		t.Errorf("merge lost a label: %+v", rec.Benchmarks["BenchmarkCampaign/gift64"])
	}
}

// writeRecord writes a record file with the given ns/op per benchmark
// under one label.
func writeRecord(t *testing.T, path, label string, ns map[string]float64) {
	t.Helper()
	rec := Record{Benchmarks: map[string]map[string]*Metrics{}}
	for name, v := range ns {
		rec.Benchmarks[name] = map[string]*Metrics{label: {NsPerOp: v, Runs: 5}}
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	writeRecord(t, old, "after", map[string]float64{
		"BenchmarkCampaign": 100, "BenchmarkOracle": 50, "BenchmarkGone": 10,
	})

	t.Run("ok_within_threshold", func(t *testing.T) {
		cur := filepath.Join(dir, "ok.json")
		writeRecord(t, cur, "after", map[string]float64{
			"BenchmarkCampaign": 110, "BenchmarkOracle": 40, "BenchmarkGone": 10, "BenchmarkNew": 7,
		})
		var out bytes.Buffer
		if err := run([]string{"-compare", old, cur}, nil, &out, &out); err != nil {
			t.Fatalf("10%% slowdown under 20%% threshold should pass: %v\n%s", err, out.String())
		}
		text := out.String()
		if !strings.Contains(text, "+10.0%") || !strings.Contains(text, "-20.0%") {
			t.Errorf("deltas missing:\n%s", text)
		}
		if !strings.Contains(text, "added (1):") || !strings.Contains(text, "New") {
			t.Errorf("added benchmarks should be listed:\n%s", text)
		}
	})

	t.Run("removed_fails", func(t *testing.T) {
		cur := filepath.Join(dir, "shrunk.json")
		writeRecord(t, cur, "after", map[string]float64{
			"BenchmarkCampaign": 100, "BenchmarkOracle": 50,
		})
		var out bytes.Buffer
		err := run([]string{"-compare", old, cur}, nil, &out, &out)
		if err == nil {
			t.Fatalf("a removed benchmark should fail the comparison:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "removed") || !strings.Contains(out.String(), "removed (1):") {
			t.Errorf("removal not reported: err=%v\n%s", err, out.String())
		}
	})

	t.Run("regression_fails", func(t *testing.T) {
		cur := filepath.Join(dir, "slow.json")
		writeRecord(t, cur, "after", map[string]float64{
			"BenchmarkCampaign": 130, "BenchmarkOracle": 50,
		})
		var out bytes.Buffer
		err := run([]string{"-compare", old, cur}, nil, &out, &out)
		if err == nil {
			t.Fatalf("30%% slowdown should fail:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "regressed") || !strings.Contains(out.String(), "REGRESSED") {
			t.Errorf("regression not reported: err=%v\n%s", err, out.String())
		}
	})

	t.Run("custom_threshold", func(t *testing.T) {
		cur := filepath.Join(dir, "slow2.json")
		writeRecord(t, cur, "after", map[string]float64{
			"BenchmarkCampaign": 130, "BenchmarkOracle": 50, "BenchmarkGone": 10,
		})
		var out bytes.Buffer
		if err := run([]string{"-compare", "-threshold", "0.5", old, cur}, nil, &out, &out); err != nil {
			t.Fatalf("30%% slowdown under 50%% threshold should pass: %v", err)
		}
	})

	t.Run("label_fallback", func(t *testing.T) {
		// A "before"-labelled baseline compares against an "after" run
		// without flag gymnastics: single-label files fall back.
		base := filepath.Join(dir, "before.json")
		writeRecord(t, base, "before", map[string]float64{"BenchmarkCampaign": 100})
		cur := filepath.Join(dir, "after.json")
		writeRecord(t, cur, "after", map[string]float64{"BenchmarkCampaign": 105})
		var out bytes.Buffer
		if err := run([]string{"-compare", base, cur}, nil, &out, &out); err != nil {
			t.Fatalf("single-label fallback: %v\n%s", err, out.String())
		}
	})

	t.Run("no_overlap", func(t *testing.T) {
		// Disjoint benchmark sets (e.g. two files from different -bench
		// regexes) must fail loudly with the counts, not silently print an
		// empty table or pretend nothing regressed.
		cur := filepath.Join(dir, "disjoint.json")
		writeRecord(t, cur, "after", map[string]float64{
			"BenchmarkSweep": 42, "BenchmarkOther": 7,
		})
		var out bytes.Buffer
		err := run([]string{"-compare", old, cur}, nil, &out, &out)
		if err == nil {
			t.Fatalf("disjoint records should fail the comparison:\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "no shared benchmarks") ||
			!strings.Contains(err.Error(), "3 only in") || !strings.Contains(err.Error(), "2 only in") {
			t.Errorf("error should carry the per-side counts: %v", err)
		}
		text := out.String()
		if !strings.Contains(text, "warning:") || !strings.Contains(text, "share no benchmarks") {
			t.Errorf("explicit warning missing:\n%s", text)
		}
		if !strings.Contains(text, "added (2):") || !strings.Contains(text, "removed (3):") {
			t.Errorf("added/removed sections should still be listed:\n%s", text)
		}
	})

	t.Run("bad_inputs", func(t *testing.T) {
		var sink bytes.Buffer
		for _, args := range [][]string{
			{"-compare", old},
			{"-compare", old, filepath.Join(dir, "missing.json")},
		} {
			if err := run(args, nil, &sink, &sink); err == nil {
				t.Errorf("run(%v) should fail", args)
			}
		}
	})
}

func TestIngestErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &sink, &sink); err == nil {
		t.Error("empty bench output should fail")
	}
	if err := run([]string{"stray-arg"}, strings.NewReader(benchOutput), &sink, &sink); err == nil {
		t.Error("stray positional arg should fail")
	}
}
