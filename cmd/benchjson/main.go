// benchjson converts `go test -bench` output into a JSON record keyed by
// benchmark name and run label, averaging repeated -count runs. Feeding
// two runs into the same output file under different labels (e.g.
// "before" and "after") produces a machine-readable comparison:
//
//	go test -run '^$' -bench 'Campaign|Oracle|Encrypt' -benchmem -count 5 . |
//	    go run ./cmd/benchjson -label after -o BENCH_pr2.json
//
// An existing output file is merged, not overwritten: only the entries of
// the given label are replaced.
//
// -compare mode instead diffs two record files benchmark by benchmark and
// exits nonzero when any shared benchmark slowed down beyond the
// threshold or any baseline benchmark is missing from the new record, so
// CI (or a pre-merge checklist) can gate on "this PR did not regress the
// kernels and did not silently drop coverage". Added and removed
// benchmarks are listed in their own sections:
//
//	go run ./cmd/benchjson -compare BENCH_pr2.json BENCH_pr5.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's averaged measurements under one label.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Record is the file layout: environment header plus, per benchmark name,
// one Metrics entry per label.
type Record struct {
	Goos       string                         `json:"goos,omitempty"`
	Goarch     string                         `json:"goarch,omitempty"`
	CPU        string                         `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]*Metrics `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
// "BenchmarkFoo/sub-8  18  63464410 ns/op  1577265 B/op  12424 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "after", "label for this run's entries (e.g. before, after); in -compare mode, the label to read from each file")
	out := fs.String("o", "", "output JSON file (merged if it exists; default stdout)")
	compare := fs.Bool("compare", false, "compare two record files: benchjson -compare old.json new.json")
	threshold := fs.Float64("threshold", 0.20, "relative ns/op regression threshold for -compare (0.20 = 20%)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		if fs.NArg() != 2 {
			return errors.New("-compare needs exactly two record files: old.json new.json")
		}
		return compareRecords(stdout, fs.Arg(0), fs.Arg(1), *label, *threshold)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (reading bench output from stdin; did you mean -compare?)", fs.Args())
	}
	return ingest(stdin, stdout, *label, *out)
}

// ingest reads `go test -bench` output from stdin and writes (or merges)
// the JSON record.
func ingest(stdin io.Reader, stdout io.Writer, label, out string) error {
	rec := Record{Benchmarks: map[string]map[string]*Metrics{}}
	if out != "" {
		if data, err := os.ReadFile(out); err == nil {
			if err := json.Unmarshal(data, &rec); err != nil {
				return fmt.Errorf("existing %s is not valid: %v", out, err)
			}
			if rec.Benchmarks == nil {
				rec.Benchmarks = map[string]map[string]*Metrics{}
			}
		}
	}

	type sums struct {
		ns, bytes, allocs float64
		runs              int
	}
	totals := map[string]*sums{}
	var order []string
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		t, ok := totals[name]
		if !ok {
			t = &sums{}
			totals[name] = t
			order = append(order, name)
		}
		ns, err := atof(m[2])
		if err != nil {
			return err
		}
		b, err := atof(m[3])
		if err != nil {
			return err
		}
		allocs, err := atof(m[4])
		if err != nil {
			return err
		}
		t.ns += ns
		t.bytes += b
		t.allocs += allocs
		t.runs++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %v", err)
	}
	if len(totals) == 0 {
		return errors.New("no benchmark lines on stdin")
	}

	for _, name := range order {
		t := totals[name]
		n := float64(t.runs)
		if rec.Benchmarks[name] == nil {
			rec.Benchmarks[name] = map[string]*Metrics{}
		}
		rec.Benchmarks[name][label] = &Metrics{
			NsPerOp:     t.ns / n,
			BPerOp:      t.bytes / n,
			AllocsPerOp: t.allocs / n,
			Runs:        t.runs,
		}
	}

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err := stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d %q entries to %s\n", len(totals), label, out)
	return nil
}

// pickLabel returns the metrics of label in one benchmark's entry map,
// falling back to the sole entry when the file uses a single different
// label (e.g. comparing a "before" baseline against an "after" record).
func pickLabel(entries map[string]*Metrics, label string) *Metrics {
	if m, ok := entries[label]; ok {
		return m
	}
	if len(entries) == 1 {
		for _, m := range entries {
			return m
		}
	}
	return nil
}

// compareRecords prints per-benchmark ns/op deltas between two record
// files and returns an error when any shared benchmark regressed beyond
// threshold or when any benchmark disappeared. Added and removed
// benchmarks get their own sections after the shared table: additions are
// informational, but a removed benchmark usually means lost coverage (a
// rename or a dropped case), so it fails the comparison and must be
// renamed in the baseline or acknowledged by regenerating it.
func compareRecords(w io.Writer, oldPath, newPath string, label string, threshold float64) error {
	load := func(path string) (*Record, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		if len(rec.Benchmarks) == 0 {
			return nil, fmt.Errorf("%s: no benchmarks", path)
		}
		return &rec, nil
	}
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(oldRec.Benchmarks))
	for name := range oldRec.Benchmarks {
		names = append(names, name)
	}
	for name := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchmark comparison: %s -> %s (regression threshold %+.0f%%)\n",
		oldPath, newPath, 100*threshold)
	regressed := 0
	compared := 0
	var added, removed []string
	for _, name := range names {
		o := pickLabel(oldRec.Benchmarks[name], label)
		n := pickLabel(newRec.Benchmarks[name], label)
		short := strings.TrimPrefix(name, "Benchmark")
		switch {
		case o == nil:
			added = append(added, short)
		case n == nil:
			removed = append(removed, short)
		case o.NsPerOp <= 0:
			fmt.Fprintf(w, "  %-50s old ns/op is zero; skipped\n", short)
		default:
			compared++
			delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			verdict := ""
			if delta > threshold {
				verdict = "  REGRESSED"
				regressed++
			}
			fmt.Fprintf(w, "  %-50s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
				short, o.NsPerOp, n.NsPerOp, 100*delta, verdict)
		}
	}
	if len(added) > 0 {
		fmt.Fprintf(w, "added (%d):\n", len(added))
		for _, name := range added {
			fmt.Fprintf(w, "  %s\n", name)
		}
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "removed (%d):\n", len(removed))
		for _, name := range removed {
			fmt.Fprintf(w, "  %s\n", name)
		}
	}
	if compared == 0 {
		// No overlap at all usually means the two files come from
		// different bench regexes (or one side was regenerated under new
		// names); say so explicitly instead of printing an empty table.
		fmt.Fprintf(w, "warning: %s and %s share no benchmarks (%d only in old, %d only in new) — were they produced by the same -bench pattern?\n",
			oldPath, newPath, len(removed), len(added))
		return fmt.Errorf("no shared benchmarks to compare (%d only in %s, %d only in %s)",
			len(removed), oldPath, len(added), newPath)
	}
	var failures []string
	if regressed > 0 {
		failures = append(failures, fmt.Sprintf("%d benchmark(s) regressed beyond %.0f%%", regressed, 100*threshold))
	}
	if len(removed) > 0 {
		failures = append(failures, fmt.Sprintf("%d benchmark(s) removed", len(removed)))
	}
	if len(failures) > 0 {
		return errors.New(strings.Join(failures, "; "))
	}
	fmt.Fprintf(w, "ok: %d benchmarks compared, none regressed, none removed\n", compared)
	return nil
}

func atof(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %v", s, err)
	}
	return v, nil
}
