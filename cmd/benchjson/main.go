// benchjson converts `go test -bench` output into a JSON record keyed by
// benchmark name and run label, averaging repeated -count runs. Feeding
// two runs into the same output file under different labels (e.g.
// "before" and "after") produces a machine-readable comparison:
//
//	go test -run '^$' -bench 'Campaign|Oracle|Encrypt' -benchmem -count 5 . |
//	    go run ./cmd/benchjson -label after -o BENCH_pr2.json
//
// An existing output file is merged, not overwritten: only the entries of
// the given label are replaced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's averaged measurements under one label.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Record is the file layout: environment header plus, per benchmark name,
// one Metrics entry per label.
type Record struct {
	Goos       string                         `json:"goos,omitempty"`
	Goarch     string                         `json:"goarch,omitempty"`
	CPU        string                         `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]*Metrics `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
// "BenchmarkFoo/sub-8  18  63464410 ns/op  1577265 B/op  12424 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	label := flag.String("label", "after", "label for this run's entries (e.g. before, after)")
	out := flag.String("o", "", "output JSON file (merged if it exists; default stdout)")
	flag.Parse()

	rec := Record{Benchmarks: map[string]map[string]*Metrics{}}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &rec); err != nil {
				log.Fatalf("benchjson: existing %s is not valid: %v", *out, err)
			}
			if rec.Benchmarks == nil {
				rec.Benchmarks = map[string]map[string]*Metrics{}
			}
		}
	}

	type sums struct {
		ns, bytes, allocs float64
		runs              int
	}
	totals := map[string]*sums{}
	var order []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		t, ok := totals[name]
		if !ok {
			t = &sums{}
			totals[name] = t
			order = append(order, name)
		}
		t.ns += atof(m[2])
		t.bytes += atof(m[3])
		t.allocs += atof(m[4])
		t.runs++
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: reading stdin: %v", err)
	}
	if len(totals) == 0 {
		log.Fatal("benchjson: no benchmark lines on stdin")
	}

	for _, name := range order {
		t := totals[name]
		n := float64(t.runs)
		if rec.Benchmarks[name] == nil {
			rec.Benchmarks[name] = map[string]*Metrics{}
		}
		rec.Benchmarks[name][*label] = &Metrics{
			NsPerOp:     t.ns / n,
			BPerOp:      t.bytes / n,
			AllocsPerOp: t.allocs / n,
			Runs:        t.runs,
		}
	}

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchjson: wrote %d %q entries to %s\n", len(names), *label, *out)
}

func atof(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		log.Fatalf("benchjson: bad number %q: %v", s, err)
	}
	return v
}
