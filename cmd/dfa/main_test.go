package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-key", "zz"},
		{"-cipher", "gift64", "-nibbles", "notanumber"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if err := run(context.Background(), args, &out, &errb); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

func TestRunTinyEndToEnd(t *testing.T) {
	evPath := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-cipher", "gift64", "-nibbles", "8,9,10,11,12,14",
		"-round", "25", "-pairs", "64", "-seed", "1", "-events", evPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errb.String())
	}
	for _, want := range []string{"GIFT-64 DFA", "recovered key bits", "offline complexity"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(evPath)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected run_started + run_finished + emitter_stats, got %d lines", len(lines))
	}
	var last struct {
		Event  string         `json:"event"`
		Fields map[string]any `json:"fields"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "run_finished" {
		t.Errorf("second event = %q, want run_finished", last.Event)
	}
	// The emitter closes the log with its own stats line; a drop count
	// of zero certifies the log is complete.
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "emitter_stats" {
		t.Errorf("last event = %q, want emitter_stats", last.Event)
	}
	if d, ok := last.Fields["dropped"].(float64); !ok || d != 0 {
		t.Errorf("emitter_stats dropped = %v, want 0", last.Fields["dropped"])
	}
	if _, ok := last.Fields["recovered_bits"]; !ok {
		t.Errorf("run_finished missing recovered_bits: %v", last.Fields)
	}
}
