// dfa mounts the key-recovery attack a discovered fault model enables:
// the Piret–Quisquater DFA for AES-128 byte faults, or the nibble-wise
// guess-and-filter DFA for GIFT-64 (any nibble-level fault model).
//
// Examples:
//
//	go run ./cmd/dfa -cipher aes128
//	go run ./cmd/dfa -cipher gift64 -nibbles 8,9,10,11,12,14 -round 25
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	explorefault "repro"
)

func main() {
	cipher := flag.String("cipher", "gift64", "target cipher: aes128 or gift64")
	nibbles := flag.String("nibbles", "8,9,10,11,12,14", "GIFT fault-model nibbles")
	round := flag.Int("round", 25, "GIFT fault round")
	pairs := flag.Int("pairs", 256, "faulty encryptions to collect")
	seed := flag.Uint64("seed", 1, "experiment seed")
	keyHex := flag.String("key", "", "victim key in hex (default: random from seed)")
	flag.Parse()

	var key []byte
	if *keyHex != "" {
		var err error
		if key, err = hex.DecodeString(*keyHex); err != nil {
			log.Fatalf("bad -key: %v", err)
		}
	}

	pattern := explorefault.Pattern{}
	if *cipher == "gift64" {
		var ns []int
		for _, part := range strings.Split(*nibbles, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -nibbles: %v", err)
			}
			ns = append(ns, v)
		}
		pattern = explorefault.PatternFromGroups(64, 4, ns...)
		fmt.Printf("GIFT-64 DFA: fault model nibbles %v at round %d, %d pairs\n", ns, *round, *pairs)
	} else {
		fmt.Println("AES-128 Piret–Quisquater DFA: single-byte faults at round 9")
	}

	res, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
		Cipher: *cipher, Key: key, Round: *round, Pairs: *pairs, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered key bits : %d / %d\n", res.RecoveredBits, res.TotalKeyBits)
	fmt.Printf("faulty encryptions : %d\n", res.FaultsUsed)
	fmt.Printf("offline complexity : ~2^%.1f\n", res.OfflineLog2)
	fmt.Printf("verified correct   : %v\n", res.Correct)
	fmt.Printf("detail             : %s\n", res.Notes)
}
