// dfa mounts the key-recovery attack a discovered fault model enables:
// the Piret–Quisquater DFA for AES-128 byte faults, or the nibble-wise
// guess-and-filter DFA for GIFT-64 (any nibble-level fault model).
//
// Examples:
//
//	go run ./cmd/dfa -cipher aes128
//	go run ./cmd/dfa -cipher gift64 -nibbles 8,9,10,11,12,14 -round 25
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	explorefault "repro"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func main() {
	// First SIGINT/SIGTERM cancels the run context so the event log and
	// metrics endpoint are flushed and closed on the way out; a second
	// signal force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dfa:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: it parses args, mounts the key-recovery
// attack, and writes human output to stdout. The attack itself is short;
// ctx is checked between setup and the attack.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("dfa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "gift64", "target cipher: aes128 or gift64")
	nibbles := fs.String("nibbles", "8,9,10,11,12,14", "GIFT fault-model nibbles")
	round := fs.Int("round", 25, "GIFT fault round")
	faultType := fs.String("fault-type", "xor", "typed fault model: xor, stuck-at-0, stuck-at-1, biased-and, random-byte, random-nibble (GIFT only; aes128 is defined for xor)")
	pairs := fs.Int("pairs", 256, "faulty encryptions to collect")
	seed := fs.Uint64("seed", 1, "experiment seed")
	keyHex := fs.String("key", "", "victim key in hex (default: random from seed)")
	eventsPath := fs.String("events", "", "write structured JSONL run events to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON span timeline to this file (open in ui.perfetto.dev)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var key []byte
	if *keyHex != "" {
		var err error
		if key, err = hex.DecodeString(*keyHex); err != nil {
			return fmt.Errorf("bad -key: %v", err)
		}
	}

	faultModel, err := explorefault.ParseFaultModel(*faultType)
	if err != nil {
		return fmt.Errorf("bad -fault-type: %v", err)
	}

	pattern := explorefault.Pattern{}
	if *cipher == "gift64" {
		var ns []int
		for _, part := range strings.Split(*nibbles, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -nibbles: %v", err)
			}
			ns = append(ns, v)
		}
		pattern = explorefault.PatternFromGroups(64, 4, ns...)
		fmt.Fprintf(stdout, "GIFT-64 DFA: fault model %s, nibbles %v at round %d, %d pairs\n", faultModel, ns, *round, *pairs)
	} else {
		fmt.Fprintln(stdout, "AES-128 Piret–Quisquater DFA: single-byte faults at round 9")
	}

	_, events, cleanup, err := obs.Setup(*metricsAddr, *eventsPath, stderr)
	if err != nil {
		return err
	}
	defer cleanup()
	tracer, err := trace.Open(*tracePath)
	if err != nil {
		return err
	}
	runSpan, ctx := tracer.StartRoot(ctx, trace.SpanRun)
	runSpan.SetAttr("binary", "dfa")
	runSpan.SetAttr("cipher", *cipher)
	runSpan.SetAttr("fault_model", faultModel.String())
	// The trace document is written at Close; a truncated or unwritable
	// trace surfaces as the run error rather than vanishing.
	defer func() {
		runSpan.End()
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	events.Emit(obs.EventRunStarted, map[string]any{
		"binary": "dfa", "cipher": *cipher, "round": *round,
		"pairs": *pairs, "seed": *seed, "fault_model": faultModel.String(),
	})

	if err := ctx.Err(); err != nil {
		return err
	}
	asp, _ := trace.StartSpan(ctx, "key_recovery")
	res, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
		Cipher: *cipher, Key: key, Round: *round, Pairs: *pairs,
		FaultModel: faultModel, Seed: *seed,
	})
	asp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recovered key bits : %d / %d\n", res.RecoveredBits, res.TotalKeyBits)
	fmt.Fprintf(stdout, "faulty encryptions : %d\n", res.FaultsUsed)
	fmt.Fprintf(stdout, "offline complexity : ~2^%.1f\n", res.OfflineLog2)
	fmt.Fprintf(stdout, "verified correct   : %v\n", res.Correct)
	fmt.Fprintf(stdout, "detail             : %s\n", res.Notes)

	events.Emit(obs.EventRunFinished, map[string]any{
		"binary": "dfa", "recovered_bits": res.RecoveredBits,
		"total_key_bits": res.TotalKeyBits, "correct": res.Correct,
	})
	return nil
}
