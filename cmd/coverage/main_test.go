package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-cipher", "nope"},
		{"-rounds", "25,banana"},
		{"-rounds", "9999"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTinyScan(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-cipher", "gift64", "-rounds", "28", "-samples", "64", "-per-size", "1", "-seed", "3"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	got := out.String()
	for _, want := range []string{"fault coverage of gift64", "classified ", "most vulnerable scanned round: 28"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NaN") {
		t.Errorf("output contains NaN:\n%s", got)
	}
}

// TestRunEveryRegisteredCipher pins that the scan accepts every cipher
// the registry knows — the import list is shared (internal/ciphers/all),
// so a cipher registered anywhere is never silently missing here
// (speck64 was the suspect).
func TestRunEveryRegisteredCipher(t *testing.T) {
	for _, name := range []string{"speck64", "simon64", "present80"} {
		var out, errOut bytes.Buffer
		args := []string{"-cipher", name, "-rounds", "22", "-samples", "32", "-per-size", "1"}
		if err := run(args, &out, &errOut); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}
