// coverage runs the defender-facing fault-coverage scan (footnote 1 of
// the paper): it samples the fault space of a cipher round by round,
// classifies every sampled pattern with the leakage oracle, and reports
// where the exploitable region lies — the map a countermeasure designer
// needs before deciding which rounds to protect.
//
// Examples:
//
//	go run ./cmd/coverage -cipher gift64
//	go run ./cmd/coverage -cipher aes128 -rounds 7,8,9,10 -samples 1024
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	explorefault "repro"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/all" // register every cipher
	"repro/internal/coverage"
	"repro/internal/prng"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: it parses args, runs the scan, and
// writes the coverage table to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coverage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipherName := fs.String("cipher", "gift64", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	roundsFlag := fs.String("rounds", "", "comma-separated injection rounds (default: last 5)")
	samples := fs.Int("samples", 512, "t-test samples per classification")
	perSize := fs.Int("per-size", 16, "random patterns per size class")
	seed := fs.Uint64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := prng.New(*seed)
	info, err := ciphers.Lookup(*cipherName)
	if err != nil {
		return err
	}
	key := make([]byte, info.KeyBytes)
	rng.Fill(key)
	c, err := info.New(key)
	if err != nil {
		return err
	}

	cfg := coverage.Config{Samples: *samples, RandomPerSize: *perSize}
	if *roundsFlag != "" {
		for _, part := range strings.Split(*roundsFlag, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -rounds: %v", err)
			}
			cfg.Rounds = append(cfg.Rounds, r)
		}
		cfg.ExhaustiveBits = true
		cfg.GroupSweep = true
	}

	rep, err := coverage.Scan(c, cfg, rng.Split())
	if err != nil {
		return err
	}

	groupName := "byte"
	if info.GroupBits == 4 {
		groupName = "nibble"
	}
	tb := report.NewTable(
		fmt.Sprintf("fault coverage of %s (exploitable / tested per class)", info.Name),
		"Round", "single bits", groupName+"s", "random multi-bit (by size)")
	for _, r := range rep.Rounds {
		var rnd []string
		for _, s := range r.Random {
			rnd = append(rnd, fmt.Sprintf("%db:%d/%d", s.Bits, s.Exploitable, s.Tested))
		}
		tb.AddRow(r.Round,
			fmt.Sprintf("%d/%d", r.Bits.Exploitable, r.Bits.Tested),
			fmt.Sprintf("%d/%d", r.Groups.Exploitable, r.Groups.Tested),
			strings.Join(rnd, "  "))
	}
	tb.Render(stdout)

	tested, exploitable := rep.Coverage()
	if tested == 0 {
		// An empty scan used to print "NaN%" and exit 0; make it a hard
		// error instead so scripts notice.
		return fmt.Errorf("scan classified no fault patterns")
	}
	fmt.Fprintf(stdout, "\nclassified %d fault patterns, %d exploitable (%.1f%%)\n",
		tested, exploitable, 100*float64(exploitable)/float64(tested))
	fmt.Fprintf(stdout, "most vulnerable scanned round: %d\n", rep.MostVulnerableRound())
	return nil
}
