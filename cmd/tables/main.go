// tables regenerates the tables and figures of the paper's evaluation
// section (plus this reproduction's ablations) as terminal output.
//
// Usage:
//
//	go run ./cmd/tables                 # everything, full budgets
//	go run ./cmd/tables -quick          # everything, reduced budgets
//	go run ./cmd/tables -only I,V,fig3  # a subset
//
// Experiment names: I, II, III, IV, V (tables), fig3, fig4, fig5
// (figures), keyrecovery, grouping, agent, observation (ablations).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// run is the testable CLI body: it parses args and regenerates the
// selected experiments to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "use reduced experiment budgets")
	seed := fs.Uint64("seed", 2023, "experiment seed")
	only := fs.String("only", "", "comma-separated experiment subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := harness.Options{Seed: *seed, Quick: *quick, Out: stdout}

	type experiment struct {
		name string
		run  func(harness.Options) error
	}
	experiments := []experiment{
		{"I", func(o harness.Options) error { _, err := harness.TableI(o); return err }},
		{"II", func(o harness.Options) error { _, err := harness.TableII(o); return err }},
		{"fig3", func(o harness.Options) error { _, err := harness.Figure3(o); return err }},
		{"III", func(o harness.Options) error { _, err := harness.TableIII(o); return err }},
		{"fig4", func(o harness.Options) error { _, err := harness.Figure4(o); return err }},
		{"fig5", func(o harness.Options) error { _, err := harness.Figure5(o); return err }},
		{"IV", func(o harness.Options) error { _, err := harness.TableIV(o); return err }},
		{"V", func(o harness.Options) error { _, err := harness.TableV(o); return err }},
		{"keyrecovery", func(o harness.Options) error { _, err := harness.KeyRecovery(o); return err }},
		{"grouping", func(o harness.Options) error { _, err := harness.AblationGrouping(o); return err }},
		{"agent", func(o harness.Options) error { _, err := harness.AblationAgent(o); return err }},
		{"observation", func(o harness.Options) error { _, err := harness.AblationObservation(o); return err }},
	}

	// An unknown -only name used to silently run nothing; reject it so a
	// typo ("fig6") fails loudly instead of printing an empty report.
	selected := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, e := range experiments {
			known[e.name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return fmt.Errorf("unknown experiment %q in -only (have: I, II, III, IV, V, fig3, fig4, fig5, keyrecovery, grouping, agent, observation)", name)
			}
			selected[name] = true
		}
	}

	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Fprintf(stdout, "== experiment %s (seed %d, quick=%v) ==\n", e.name, *seed, *quick)
		start := time.Now()
		if err := e.run(opt); err != nil {
			return fmt.Errorf("experiment %s: %w", e.name, err)
		}
		fmt.Fprintf(stdout, "(%s in %s)\n\n", e.name, time.Since(start).Round(time.Second))
	}
	return nil
}
