// tables regenerates the tables and figures of the paper's evaluation
// section (plus this reproduction's ablations) as terminal output.
//
// Usage:
//
//	go run ./cmd/tables                 # everything, full budgets
//	go run ./cmd/tables -quick          # everything, reduced budgets
//	go run ./cmd/tables -only I,V,fig3  # a subset
//
// Experiment names: I, II, III, IV, V (tables), fig3, fig4, fig5
// (figures), keyrecovery, grouping, agent, observation (ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced experiment budgets")
	seed := flag.Uint64("seed", 2023, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	flag.Parse()

	opt := harness.Options{Seed: *seed, Quick: *quick, Out: os.Stdout}

	type experiment struct {
		name string
		run  func(harness.Options) error
	}
	experiments := []experiment{
		{"I", func(o harness.Options) error { _, err := harness.TableI(o); return err }},
		{"II", func(o harness.Options) error { _, err := harness.TableII(o); return err }},
		{"fig3", func(o harness.Options) error { _, err := harness.Figure3(o); return err }},
		{"III", func(o harness.Options) error { _, err := harness.TableIII(o); return err }},
		{"fig4", func(o harness.Options) error { _, err := harness.Figure4(o); return err }},
		{"fig5", func(o harness.Options) error { _, err := harness.Figure5(o); return err }},
		{"IV", func(o harness.Options) error { _, err := harness.TableIV(o); return err }},
		{"V", func(o harness.Options) error { _, err := harness.TableV(o); return err }},
		{"keyrecovery", func(o harness.Options) error { _, err := harness.KeyRecovery(o); return err }},
		{"grouping", func(o harness.Options) error { _, err := harness.AblationGrouping(o); return err }},
		{"agent", func(o harness.Options) error { _, err := harness.AblationAgent(o); return err }},
		{"observation", func(o harness.Options) error { _, err := harness.AblationObservation(o); return err }},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		fmt.Printf("== experiment %s (seed %d, quick=%v) ==\n", e.name, *seed, *quick)
		start := time.Now()
		if err := e.run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n\n", e.name, time.Since(start).Round(time.Second))
	}
}
