package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-only", "fig6"},
		{"-only", "I,banana"},
		{"-seed", "not-a-number"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTableISubset(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-quick", "-only", "I", "-seed", "2023"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	got := out.String()
	if !strings.Contains(got, "== experiment I ") {
		t.Errorf("output missing experiment banner:\n%s", got)
	}
	if strings.Contains(got, "== experiment II ") {
		t.Errorf("-only I also ran experiment II:\n%s", got)
	}
}
