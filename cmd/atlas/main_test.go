package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	_ "repro/internal/ciphers/gift" // register gift64
)

func TestParseRounds(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
	}{
		{"", nil},
		{"25", []int{25}},
		{"8-10", []int{8, 9, 10}},
		{"1,3,5", []int{1, 3, 5}},
		{"1, 3-4 ,9", []int{1, 3, 4, 9}},
	} {
		got, err := parseRounds(tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseRounds(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"x", "9-8", "3-"} {
		if _, err := parseRounds(bad); err == nil {
			t.Errorf("parseRounds(%q) should fail", bad)
		}
	}
}

// TestRunSweepValidateReplay drives the three CLI modes end to end on a
// tiny reduced-round sweep: sweep to a file, validate that file, then
// replay a synthetic event log against it.
func TestRunSweepValidateReplay(t *testing.T) {
	dir := t.TempDir()
	atlasPath := filepath.Join(dir, "gift64.atlas.json")

	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-cipher", "gift64", "-rounds", "25", "-samples", "64",
		"-fault-type", "xor,stuck-at-0", "-seed", "7",
		"-heatmap", "markdown", "-o", atlasPath,
	}, &out, &errb)
	if err != nil {
		t.Fatalf("sweep: %v\nstderr: %s", err, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "cipher gift64: 32 cells") {
		t.Errorf("summary line missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, `| round\nibble |`) {
		t.Errorf("markdown heatmap missing:\n%s", text)
	}
	if !strings.Contains(text, "atlas written to "+atlasPath) {
		t.Errorf("no write confirmation:\n%s", text)
	}

	out.Reset()
	if err := run(context.Background(), []string{"-validate", atlasPath}, &out, &errb); err != nil {
		t.Fatalf("-validate: %v", err)
	}
	if !strings.Contains(out.String(), "valid atlas") {
		t.Errorf("-validate output:\n%s", out.String())
	}

	// A synthetic two-episode log: one leaky hit on nibble 0 (exploitable
	// at round 25 / seed 7), one non-leaky.
	logPath := filepath.Join(dir, "events.jsonl")
	lines := []string{
		`{"ts":"2026-01-01T00:00:00Z","seq":1,"event":"run_started","fields":{"round":25}}`,
		`{"ts":"2026-01-01T00:00:01Z","seq":2,"event":"episode","fields":{"episode":1,"pattern":"0f00000000000000","fault_model":"xor","t":1.0,"leaky":false}}`,
		`{"ts":"2026-01-01T00:00:02Z","seq":3,"event":"episode","fields":{"episode":2,"pattern":"0f00000000000000","fault_model":"xor","t":50.0,"leaky":true}}`,
	}
	if err := os.WriteFile(logPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-replay", logPath, "-atlas", atlasPath}, &out, &errb); err != nil {
		t.Fatalf("-replay: %v", err)
	}
	text = out.String()
	if !strings.Contains(text, "round 25: 2 episodes (1 leaky)") {
		t.Errorf("replay header wrong:\n%s", text)
	}
	if !strings.Contains(text, "coverage: 1/") {
		t.Errorf("coverage line wrong:\n%s", text)
	}
	if !strings.Contains(text, "episodes to first exploitable hit: 2") {
		t.Errorf("first-hit line wrong:\n%s", text)
	}
}

// TestRunCheckpointResume exercises the -checkpoint path: a cancelled
// sweep leaves a resumable file, and the rerun produces the same atlas
// as an uninterrupted sweep.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	refPath := filepath.Join(dir, "ref.atlas.json")
	gotPath := filepath.Join(dir, "resumed.atlas.json")
	args := func(out string) []string {
		return []string{
			"-cipher", "gift64", "-rounds", "25", "-samples", "64",
			"-fault-type", "xor,stuck-at-0", "-seed", "7",
			"-heatmap", "none", "-checkpoint", ckpt, "-o", out,
		}
	}

	var sink bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupted before the first shard
	if err := run(ctx, args(gotPath), &sink, &sink); err == nil {
		t.Fatal("cancelled sweep should report an error")
	}
	if !strings.Contains(sink.String(), "rerun with the same arguments to resume") {
		t.Errorf("resume hint missing on interrupt:\n%s", sink.String())
	}

	if err := run(context.Background(), args(gotPath), &sink, &sink); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := run(context.Background(), []string{
		"-cipher", "gift64", "-rounds", "25", "-samples", "64",
		"-fault-type", "xor,stuck-at-0", "-seed", "7",
		"-heatmap", "none", "-o", refPath,
	}, &sink, &sink); err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed atlas differs from uninterrupted reference")
	}
}

func TestRunBadFlags(t *testing.T) {
	var sink bytes.Buffer
	for _, args := range [][]string{
		{"-rounds", "bogus"},
		{"-fault-type", "nope"},
		{"-oracle", "nope"},
		{"-heatmap", "nope"},
		{"-replay", "x.jsonl"}, // missing -atlas
		{"-cipher", "nonesuch", "-rounds", "1"},
	} {
		if err := run(context.Background(), args, &sink, &sink); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
