// atlas runs exhaustive fault-space sweeps and works with their output:
// it enumerates every round × position × fault model cell of a cipher
// (ARMORY-style), classifies each with the t-test/SIFA oracle, and
// writes a machine-readable exploitability atlas plus a round × position
// heatmap. It also validates existing atlases and replays discovery-run
// event logs against them to report RL sample efficiency.
//
//	# sweep the last paper rounds of GIFT-64 under two fault models
//	go run ./cmd/atlas -cipher gift64 -rounds 24-26 -fault-type xor,stuck-at-0 \
//	    -samples 256 -seed 7 -o gift64-atlas.json
//
//	# structural validation of an atlas document
//	go run ./cmd/atlas -validate gift64-atlas.json
//
//	# how much of the exploitable space did a discovery run find?
//	go run ./cmd/atlas -replay run-events.jsonl -atlas gift64-atlas.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	explorefault "repro"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func main() {
	// First SIGINT/SIGTERM cancels the run context: the sweep stops at
	// the next trace-block boundary with all finished shards checkpointed.
	// A second signal force-kills.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "atlas:", err)
		os.Exit(1)
	}
}

// parseRounds accepts "25", "8-10", "1,3,5" and combinations.
func parseRounds(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, err
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, err
			}
			if b < a {
				return nil, fmt.Errorf("empty range %q", part)
			}
			for r := a; r <= b; r++ {
				out = append(out, r)
			}
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseModels(s string) ([]explorefault.FaultModel, error) {
	var out []explorefault.FaultModel
	for _, part := range strings.Split(s, ",") {
		m, err := explorefault.ParseFaultModel(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// run is the testable CLI body.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("atlas", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "gift64", "target cipher: "+fmt.Sprint(explorefault.Ciphers()))
	roundsFlag := fs.String("rounds", "", "injection rounds to sweep: \"25\", \"8-10\", \"1,3,5\" (default: every round)")
	gran := fs.Int("granularity", 0, "position width in bits (0 = the cipher's native S-box width)")
	faultTypes := fs.String("fault-type", "xor", "comma-separated typed fault models to enumerate")
	oracleName := fs.String("oracle", "welch", "leakage oracle: welch or sifa")
	samples := fs.Int("samples", 0, "plaintexts per cell (default 512)")
	maxOrder := fs.Int("max-order", 0, "highest t-test order (default 2)")
	threshold := fs.Float64("threshold", 0, "exploitability threshold (default 4.5)")
	order2 := fs.Bool("order2", false, "also enumerate two-position cells (bounded by -order2-cap)")
	order2Cap := fs.Int("order2-cap", 0, "max position pairs per round and model in -order2 mode (default 256)")
	workers := fs.Int("workers", 0, "cell-shard worker goroutines (0 = GOMAXPROCS; results are identical for every value)")
	scalar := fs.Bool("scalar", false, "force the scalar cipher path instead of the batch kernel (bit-identical, slower)")
	seed := fs.Uint64("seed", 1, "experiment seed (drives key derivation and all campaigns)")
	outPath := fs.String("o", "", "write the atlas JSON to this file")
	heatmap := fs.String("heatmap", "text", "heatmap rendering on stdout: text, markdown or none")
	checkpointPath := fs.String("checkpoint", "", "persist finished shards to this file; rerunning with the same arguments resumes after the last finished shard")
	eventsPath := fs.String("events", "", "write structured JSONL run events to this file")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON span timeline to this file (open in ui.perfetto.dev)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	validatePath := fs.String("validate", "", "validate the atlas JSON at this path and exit")
	replayPath := fs.String("replay", "", "replay the discovery-run JSONL event log at this path against -atlas and report coverage")
	atlasPath := fs.String("atlas", "", "atlas file for -replay")
	replayRound := fs.Int("round", 0, "injection round for -replay (0 = auto-detect from the log)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validatePath != "" {
		return runValidate(*validatePath, stdout)
	}
	if *replayPath != "" {
		if *atlasPath == "" {
			return fmt.Errorf("-replay needs -atlas")
		}
		return runReplay(*replayPath, *atlasPath, *replayRound, stdout)
	}

	rounds, err := parseRounds(*roundsFlag)
	if err != nil {
		return fmt.Errorf("bad -rounds: %v", err)
	}
	models, err := parseModels(*faultTypes)
	if err != nil {
		return fmt.Errorf("bad -fault-type: %v", err)
	}
	oracle, err := explorefault.ParseOracle(*oracleName)
	if err != nil {
		return fmt.Errorf("bad -oracle: %v", err)
	}
	switch *heatmap {
	case "text", "markdown", "none":
	default:
		return fmt.Errorf("bad -heatmap %q: want text, markdown or none", *heatmap)
	}

	metrics, events, cleanup, err := obs.Setup(*metricsAddr, *eventsPath, stderr)
	if err != nil {
		return err
	}
	defer cleanup()
	tracer, err := trace.Open(*tracePath)
	if err != nil {
		return err
	}
	runSpan, ctx := tracer.StartRoot(ctx, trace.SpanRun)
	runSpan.SetAttr("binary", "atlas")
	runSpan.SetAttr("cipher", *cipher)
	defer func() {
		runSpan.End()
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	events.Emit(obs.EventRunStarted, map[string]any{
		"binary": "atlas", "cipher": *cipher, "rounds": *roundsFlag,
		"fault_types": *faultTypes, "oracle": oracle.String(),
		"samples": *samples, "order2": *order2, "seed": *seed,
	})

	atlas, err := explorefault.Sweep(ctx, explorefault.SweepConfig{
		Cipher:     *cipher,
		Rounds:     rounds,
		GranBits:   *gran,
		Models:     models,
		Oracle:     oracle,
		Samples:    *samples,
		MaxOrder:   *maxOrder,
		Threshold:  *threshold,
		Order2:     *order2,
		Order2Cap:  *order2Cap,
		Workers:    *workers,
		NoBatch:    *scalar,
		Seed:       *seed,
		Metrics:    metrics,
		Events:     events,
		Checkpoint: *checkpointPath,
	})
	if err != nil {
		if ctx.Err() != nil && *checkpointPath != "" {
			fmt.Fprintf(stderr, "atlas: interrupted; finished shards saved to %s — rerun with the same arguments to resume\n", *checkpointPath)
		}
		return err
	}

	fmt.Fprintf(stdout, "cipher %s: %d cells (%d rounds x %d positions x %d models%s), %d exploitable, max t = %.2f\n",
		atlas.Cipher, atlas.Summary.Cells, len(atlas.Rounds), atlas.Positions, len(atlas.Models),
		map[bool]string{true: " + order-2 pairs", false: ""}[atlas.Order2],
		atlas.Summary.Exploitable, atlas.Summary.MaxT)
	switch *heatmap {
	case "text":
		fmt.Fprintln(stdout)
		atlas.Heatmap().Render(stdout)
	case "markdown":
		fmt.Fprintln(stdout)
		atlas.Heatmap().RenderMarkdown(stdout)
	}
	if *outPath != "" {
		if err := atlas.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "atlas written to %s\n", *outPath)
	}
	events.Emit(obs.EventRunFinished, map[string]any{
		"binary": "atlas", "cells": atlas.Summary.Cells,
		"exploitable": atlas.Summary.Exploitable, "max_t": atlas.Summary.MaxT,
	})
	return nil
}

func runValidate(path string, stdout io.Writer) error {
	a, err := explorefault.ReadAtlas(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: valid atlas (%s): %d cells, %d exploitable, max t = %.2f, threshold %.1f\n",
		path, a.Schema, a.Summary.Cells, a.Summary.Exploitable, a.Summary.MaxT, a.Threshold)
	return nil
}

func runReplay(logPath, atlasPath string, round int, stdout io.Writer) error {
	a, err := explorefault.ReadAtlas(atlasPath)
	if err != nil {
		return err
	}
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := explorefault.CompareAtlas(a, round, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "round %d: %d episodes (%d leaky), atlas has %d exploitable cells\n",
		rep.Round, rep.Episodes, rep.LeakyEpisodes, rep.ExploitableCells)
	fmt.Fprintf(stdout, "coverage: %d/%d exploitable cells found (%.1f%%)\n",
		rep.FoundCells, rep.ExploitableCells, 100*rep.Coverage)
	if rep.EpisodesToFirstHit > 0 {
		fmt.Fprintf(stdout, "episodes to first exploitable hit: %d\n", rep.EpisodesToFirstHit)
	} else {
		fmt.Fprintln(stdout, "no exploitable atlas cell was hit")
	}
	if rep.OffAtlas > 0 {
		fmt.Fprintf(stdout, "off-atlas leaky episodes (outside the enumerated space): %d\n", rep.OffAtlas)
	}
	if len(rep.ByModel) > 0 {
		data, _ := json.Marshal(rep.ByModel)
		fmt.Fprintf(stdout, "found cells by model: %s\n", data)
	}
	return nil
}
