package explorefault_test

import (
	"testing"

	explorefault "repro"
)

func TestAssessProtectedContrast(t *testing.T) {
	// The public protected oracle: identical single-bit faults in both
	// branches leak; a single-branch fault is muted.
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}
	both := explorefault.PatternFromBits(256, 76, 128+76)
	one := explorefault.PatternFromBits(256, 76)
	cfg := explorefault.AssessConfig{Cipher: "aes128", Key: key, Round: 9, Samples: 1024, Seed: 5}

	aBoth, err := explorefault.AssessProtected(both, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aOne, err := explorefault.AssessProtected(one, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !aBoth.Leaky {
		t.Errorf("identical two-branch faults not exploitable (t = %.1f)", aBoth.T)
	}
	if aOne.Leaky {
		t.Errorf("single-branch fault exploitable (t = %.1f); countermeasure broken", aOne.T)
	}
}

func TestAssessProtectedValidation(t *testing.T) {
	p := explorefault.PatternFromBits(256, 1)
	if _, err := explorefault.AssessProtected(p, explorefault.AssessConfig{
		Cipher: "aes128", Round: 0,
	}); err == nil {
		t.Error("accepted round 0")
	}
	short := explorefault.PatternFromBits(128, 1)
	if _, err := explorefault.AssessProtected(short, explorefault.AssessConfig{
		Cipher: "aes128", Round: 9, Samples: 64,
	}); err == nil {
		t.Error("accepted single-width pattern for the doubled action space")
	}
}

// TestDiscoverSimonGenerality runs a miniature discovery session against
// SIMON-64/128 — a Feistel cipher the pipeline was never tuned for — and
// checks that exploitable patterns are still found and verified. This is
// the paper's generality claim exercised beyond its own cipher set.
func TestDiscoverSimonGenerality(t *testing.T) {
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:     "simon64",
		Round:      42,
		Episodes:   120,
		NumEnvs:    4,
		Samples:    256,
		MaxHarvest: 6,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedLeaky {
		t.Fatal("no exploitable pattern found on SIMON")
	}
	if len(res.Models) == 0 {
		t.Fatal("no verified models harvested on SIMON")
	}
	for _, m := range res.Models {
		if !m.Verified {
			t.Errorf("unverified model %v", m)
		}
	}
}

func TestPropagateSimonFeistelShape(t *testing.T) {
	// A fault in SIMON's right word at round r leaves the left word
	// clean at round r+1 (Feistel swap), so the round-(r+1) input has at
	// most half its bytes active.
	pattern := explorefault.PatternFromBits(64, 0) // bit 0 = y word
	prof, err := explorefault.Propagate(pattern, "simon64", nil, 40, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a := prof.ActiveGroups[40]; a > 4.01 {
		t.Errorf("round-41 input has %.2f active bytes; Feistel structure should cap it at 4", a)
	}
	if prof.DistinguisherRound < 41 {
		t.Errorf("distinguisher round %d, want >= 41", prof.DistinguisherRound)
	}
}

func TestVerifyKeyRecoveryGIFT128(t *testing.T) {
	pattern := explorefault.PatternFromGroups(128, 4, 5)
	res, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
		Cipher: "gift128", Pairs: 512, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("GIFT-128 DFA returned incorrect bits (%s)", res.Notes)
	}
	if res.RecoveredBits < 64 {
		t.Errorf("recovered %d bits (%s), want >= 64", res.RecoveredBits, res.Notes)
	}
}

func TestPatternFromGroupsGIFT128(t *testing.T) {
	// The 128-bit GIFT variant is registered and assessable end to end.
	p := explorefault.PatternFromGroups(128, 4, 0) // nibble 0
	a, err := explorefault.Assess(p, explorefault.AssessConfig{
		Cipher: "gift128", Round: 37, Samples: 1024, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Leaky {
		t.Errorf("GIFT-128 late-round nibble fault not exploitable (t = %.1f)", a.T)
	}
}
