package explorefault

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"time"

	"repro/internal/abstraction"
	"repro/internal/bitvec"
	"repro/internal/countermeasure"
	"repro/internal/explore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/rl/ppo"
)

// DiscoverConfig tunes a discovery session. Zero values select paper
// defaults scaled to a single-machine budget.
type DiscoverConfig struct {
	// Cipher names the target ("aes128", "gift64", "gift128",
	// "present80").
	Cipher string
	// Key is the cipher key; nil draws a random key from Seed.
	Key []byte
	// Round is the fault-injection round (1-based). The paper explores
	// the last three rounds of AES (most interesting: 8) and round 25
	// of GIFT-64.
	Round int
	// Protected evaluates the duplication countermeasure of §IV-C: the
	// action space doubles (bits of both redundant branches) and the
	// t-test runs on released ciphertexts only.
	Protected bool
	// FaultModels is the set of typed fault models the agent may choose
	// from. Empty means {XorFlip}: the paper's bit-flip encoding, with
	// the pre-zoo action space and checkpoint format. With more than one
	// entry the action space gains one model-select action per entry and
	// every discovered model records the injection type it leaks under.
	FaultModels []FaultModel
	// Oracle selects the leakage statistic (default OracleWelch;
	// OracleSIFA conditions on traces where the fault was ineffective).
	// Protected discovery supports OracleWelch only.
	Oracle OracleKind
	// Episodes is the total training budget (default 5000, Fig. 4's
	// span; the tests and examples use far less).
	Episodes int
	// NumEnvs is the number of vectorized environments (default 8).
	NumEnvs int
	// Samples is the t-test sample count per reward evaluation
	// (default 512 during training; offline verification always uses
	// 2048).
	Samples int
	// Seed drives every random choice; identical configs with the same
	// seed reproduce the same run.
	Seed uint64
	// LinearReward selects Equation (1)'s reward n instead of e^n
	// (the Fig. 3 ablation).
	LinearReward bool
	// RewardAtEachStep evaluates the t-test at every step instead of
	// once per episode (the Table II ablation; ~T times slower).
	RewardAtEachStep bool
	// EpisodeLen overrides T (0 = number of state bits, the paper's
	// choice).
	EpisodeLen int
	// Agent overrides PPO hyperparameters (zero fields keep defaults:
	// lr 1e-3, 4 epochs, entropy 1e-3, bootstrap spike, exploration
	// floor 1/T).
	Agent ppo.Config
	// Workers is the fault-campaign worker-pool size per oracle; 0 uses
	// GOMAXPROCS. Results are bit-identical for every value.
	Workers int
	// NoBatch forces the scalar reference path even for ciphers with a
	// batch kernel (bit-identical; for equivalence tests and benchmarks).
	NoBatch bool
	// NoOracleCache disables oracle memoization (every episode pays the
	// full simulation cost, as in the paper's timing runs).
	NoOracleCache bool
	// CacheCapacity bounds the per-oracle memo table
	// (default explore.DefaultCacheCapacity).
	CacheCapacity int
	// SkipHarvest skips the abstraction/extension pipeline (used by
	// benches that only need training-rate numbers).
	SkipHarvest bool
	// Checkpoint, when non-empty, is a file path the session snapshots
	// its training state to (atomically) at PPO-update boundaries and on
	// cancellation, so an interrupted run can be resumed bit-identically.
	Checkpoint string
	// CheckpointEvery is the periodic-write cadence in episodes
	// (default explore.DefaultCheckpointEvery). Snapshots only land on
	// update boundaries, so the effective cadence rounds up to a multiple
	// of NumEnvs.
	CheckpointEvery int
	// Resume restores training state from Checkpoint before running. A
	// missing checkpoint file starts fresh; a checkpoint from a different
	// configuration (seed, cipher, round, ...) is an error. Episodes may
	// be raised between runs to extend a finished session.
	Resume bool
	// MaxHarvest bounds how many raw log patterns are abstracted
	// (default 24).
	MaxHarvest int
	// Progress, if non-nil, receives training summaries.
	Progress func(Progress)
	// Metrics, if non-nil, receives run-time instrumentation across the
	// whole stack: campaign and oracle throughput, cache hit/miss
	// latencies, episode and PPO-update rates (see internal/obs).
	// Training results are bit-identical with metrics on or off.
	Metrics *Metrics
	// Events, if non-nil, receives structured JSONL run events:
	// session started/finished, per-episode and per-PPO-update records,
	// per-oracle-evaluation records with cache verdicts, and
	// model_abstracted/model_verified events from the harvest pipeline.
	Events *EventEmitter
}

// Progress re-exports the session progress record.
type Progress = explore.Progress

// TrainingBucket summarizes a window of episodes (Fig. 4 / Table V view).
type TrainingBucket struct {
	StartEpisode, EndEpisode int
	LeakyEpisodes            int
	AvgBitsSelected          float64
	MaxLeakyBits             int
	// SingleBitModels counts leaky episodes whose pattern is one bit;
	// MultiBitModels those with two or more; DiagonalContained the
	// multi-bit ones confined to a single AES diagonal (zero for other
	// ciphers). These feed Fig. 4's per-window model census.
	SingleBitModels   int
	MultiBitModels    int
	DiagonalContained int
}

// PatternFrequency counts how often a leaky pattern appeared in training.
// Identical patterns under different fault models count separately.
type PatternFrequency struct {
	Pattern Pattern
	Model   FaultModel
	Count   int
}

// DiscoveryResult is the outcome of Discover.
type DiscoveryResult struct {
	// Converged is the fault pattern read out from the trained policy,
	// with its leakage statistic and the fault model it was discovered
	// under (always XorFlip in single-model sessions).
	Converged      Pattern
	ConvergedT     float64
	ConvergedLeaky bool
	ConvergedModel FaultModel
	// Models are the abstracted, offline-verified fault models harvested
	// from the converged policy and the training log, extended across
	// the cipher's structural symmetries and deduplicated (§III-F).
	Models []Model
	// Buckets summarizes training in windows of 1000 episodes (Fig. 4).
	Buckets []TrainingBucket
	// FirstWindowPatterns are the distinct leaky patterns of the first
	// 1000 episodes with frequencies (Table V).
	FirstWindowPatterns []PatternFrequency
	// Episodes, Duration, EpisodesPerMin and StepsPerMin are the
	// training-rate figures (Table II, Table IV).
	Episodes       int
	Duration       time.Duration
	EpisodesPerMin float64
	StepsPerMin    float64
	// Cache aggregates oracle-memoization counters across all envs
	// (all zero when NoOracleCache is set).
	Cache CacheStats
	// Key is the cipher key used (relevant when it was drawn randomly).
	Key []byte
}

// Discover runs an RL fault-model discovery session: train PPO on the
// bit-selection MDP, read out the converged pattern, and harvest verified
// fault models (§III). It is the paper's headline entry point, and is
// DiscoverContext with a background context (never cancelled).
func Discover(cfg DiscoverConfig) (*DiscoveryResult, error) {
	return DiscoverContext(context.Background(), cfg)
}

// DiscoverContext is Discover with cancellation. When ctx is cancelled the
// session stops at the next episode-batch boundary (never mid-trace, so
// PRNG streams stay intact), writes a final checkpoint when
// cfg.Checkpoint is set, and returns ctx.Err().
func DiscoverContext(ctx context.Context, cfg DiscoverConfig) (*DiscoveryResult, error) {
	if cfg.Round == 0 {
		return nil, fmt.Errorf("explorefault: DiscoverConfig.Round is required")
	}
	if cfg.Samples == 0 {
		cfg.Samples = 512
	}
	if cfg.MaxHarvest == 0 {
		cfg.MaxHarvest = 24
	}
	info, err := LookupCipher(cfg.Cipher)
	if err != nil {
		return nil, err
	}
	if cfg.Round < 1 || cfg.Round > info.Rounds {
		return nil, fmt.Errorf("explorefault: round %d out of range 1..%d for %s",
			cfg.Round, info.Rounds, cfg.Cipher)
	}

	// Fix the key up front so that all envs attack the same instance.
	keyRng := prng.New(cfg.Seed ^ 0x5eed)
	_, key, err := newKeyedCipher(cfg.Cipher, cfg.Key, keyRng)
	if err != nil {
		return nil, err
	}

	var factory explore.OracleFactory
	if cfg.Protected {
		if cfg.Oracle != OracleWelch {
			return nil, fmt.Errorf("explorefault: oracle %s not supported with Protected (Welch only)", cfg.Oracle)
		}
		factory = func(rng *prng.Source) (explore.Oracle, error) {
			c, _, err := newKeyedCipher(cfg.Cipher, key, rng)
			if err != nil {
				return nil, err
			}
			return countermeasure.NewOracle(c, countermeasure.OracleConfig{
				Round:   cfg.Round,
				Samples: cfg.Samples,
				Oracle:  cfg.Oracle,
				Workers: cfg.Workers,
				NoBatch: cfg.NoBatch,
				Metrics: cfg.Metrics,
			}, rng.Split())
		}
	} else {
		factory = assessorOracleFactory(cfg.Cipher, key, cfg.Round, cfg.Samples, cfg.Workers, cfg.NoBatch, cfg.Oracle, cfg.Metrics)
	}

	agentCfg := cfg.Agent
	if agentCfg.LearningRate == 0 {
		agentCfg.LearningRate = 1e-3
	}
	if agentCfg.Epochs == 0 {
		agentCfg.Epochs = 4
	}
	if agentCfg.EntropyCoef == 0 {
		agentCfg.EntropyCoef = 1e-3
	}
	envCfg := explore.EnvConfig{EpisodeLen: cfg.EpisodeLen, Models: cfg.FaultModels}
	if cfg.LinearReward {
		envCfg.Shape = explore.Linear
	}
	if cfg.RewardAtEachStep {
		envCfg.Timing = explore.EachStep
	}
	// The checkpoint label folds the oracle-side configuration (cipher,
	// round, key, samples, protection, fault models, oracle kind) into
	// the session fingerprint — the explore package cannot see those, but
	// they determine every reward, so a resume across them must be
	// refused. Workers, NoBatch and cache settings are excluded: results
	// are bit-identical across them by construction.
	label := fmt.Sprintf("%s|r%d|p=%v|s=%d|m=%s|o=%s|key=%x",
		cfg.Cipher, cfg.Round, cfg.Protected, cfg.Samples,
		faultModelsLabel(cfg.FaultModels), cfg.Oracle, key)
	sess, err := explore.NewSession(factory, explore.SessionConfig{
		NumEnvs:  cfg.NumEnvs,
		Episodes: cfg.Episodes,
		Env:      envCfg,
		Agent:    agentCfg,
		Seed:     cfg.Seed,
		OracleCache: explore.CacheConfig{
			Disable:  cfg.NoOracleCache,
			Capacity: cfg.CacheCapacity,
		},
		Progress:        cfg.Progress,
		Metrics:         cfg.Metrics,
		Events:          cfg.Events,
		Checkpoint:      cfg.Checkpoint,
		CheckpointEvery: cfg.CheckpointEvery,
		CheckpointLabel: label,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Resume && cfg.Checkpoint != "" {
		ck, err := explore.LoadCheckpoint(cfg.Checkpoint)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume from yet: start fresh.
		case err != nil:
			return nil, fmt.Errorf("explorefault: resume: %w", err)
		default:
			if err := sess.RestoreCheckpoint(ck); err != nil {
				return nil, fmt.Errorf("explorefault: resume: %w", err)
			}
		}
	}
	trainSpan, trainCtx := trace.StartSpan(ctx, trace.SpanTrain)
	out, err := sess.Run(trainCtx)
	trainSpan.End()
	if err != nil {
		return nil, err
	}

	res := &DiscoveryResult{
		Converged:      out.Converged,
		ConvergedT:     out.ConvergedT,
		ConvergedLeaky: out.ConvergedLeaky,
		ConvergedModel: out.ConvergedModel,
		Episodes:       out.Episodes,
		Duration:       out.Duration,
		EpisodesPerMin: out.EpisodesPerMin,
		StepsPerMin:    out.StepsPerMin,
		Cache:          out.Cache,
		Key:            key,
	}
	isAES := cfg.Cipher == "aes128"
	records := out.Log.Records()
	for _, b := range out.Log.Buckets(1000) {
		tb := TrainingBucket{
			StartEpisode:    b.Start,
			EndEpisode:      b.End,
			LeakyEpisodes:   b.LeakyCount,
			AvgBitsSelected: b.AvgDistinct,
			MaxLeakyBits:    b.MaxDistinct,
		}
		for _, r := range records[b.Start:b.End] {
			if !r.Leaky {
				continue
			}
			if r.Distinct == 1 {
				tb.SingleBitModels++
				continue
			}
			tb.MultiBitModels++
			if isAES && diagonalContained(r.Pattern) {
				tb.DiagonalContained++
			}
		}
		res.Buckets = append(res.Buckets, tb)
	}
	for _, pc := range out.Log.PatternCounts(1000) {
		res.FirstWindowPatterns = append(res.FirstWindowPatterns, PatternFrequency{
			Pattern: pc.Pattern, Model: pc.Model, Count: pc.Count,
		})
	}
	if cfg.SkipHarvest || cfg.Protected {
		// Protected mode's doubled patterns have no byte/nibble
		// abstraction; the converged per-branch bits are the result.
		return res, nil
	}

	harvestSpan, harvestCtx := trace.StartSpan(ctx, trace.SpanHarvest)
	res.Models, err = harvestModels(harvestCtx, cfg, key, out)
	harvestSpan.SetAttr("models", len(res.Models))
	harvestSpan.End()
	return res, err
}

// diagonalContained reports whether the bytes touched by a 128-bit
// pattern all lie on one AES diagonal (and there are at least two bits).
func diagonalContained(p Pattern) bool {
	bytes := p.Groups(8)
	if p.Count() < 2 {
		return false
	}
	diag := func(b int) int { return ((b%4-b/4)%4 + 4) % 4 }
	d := diag(bytes[0])
	for _, b := range bytes[1:] {
		if diag(b) != d {
			return false
		}
	}
	return true
}

// faultModelsLabel renders a fault-model set for checkpoint labels
// (empty = the XorFlip default).
func faultModelsLabel(models []FaultModel) string {
	if len(models) == 0 {
		return XorFlip.String()
	}
	parts := make([]string, len(models))
	for i, m := range models {
		parts[i] = m.String()
	}
	return strings.Join(parts, "+")
}

// modelVerifier binds one typed fault model to an explore.Oracle,
// adapting it to abstraction.Verifier (whose Evaluate carries no model
// argument: a harvest pass verifies patterns under a single injection
// model).
type modelVerifier struct {
	oracle explore.Oracle
	model  FaultModel
}

func (v modelVerifier) Evaluate(ctx context.Context, p *bitvec.Vector) (float64, error) {
	return v.oracle.Evaluate(ctx, p, v.model)
}

func (v modelVerifier) Threshold() float64 { return v.oracle.Threshold() }

func (v modelVerifier) StateBits() int { return v.oracle.StateBits() }

// harvestModels runs the §III-F pipeline on the session outcome: collect
// candidate raw patterns (converged + the most frequent and largest leaky
// training patterns), abstract to group granularity with a high-sample
// offline verifier, extend by structural symmetry, deduplicate. In
// multi-model sessions candidates are grouped by the fault model of the
// episode that produced them and each group is verified under its own
// model; a single-model run reproduces the historical pipeline exactly.
func harvestModels(ctx context.Context, cfg DiscoverConfig, key []byte, out *explore.Outcome) ([]Model, error) {
	verifierFactory := assessorOracleFactory(cfg.Cipher, key, cfg.Round, 2048, cfg.Workers, cfg.NoBatch, cfg.Oracle, cfg.Metrics)
	verifier, err := verifierFactory(prng.New(cfg.Seed ^ 0xfeed))
	if err != nil {
		return nil, err
	}
	info, err := LookupCipher(cfg.Cipher)
	if err != nil {
		return nil, err
	}

	faultModels := cfg.FaultModels
	if len(faultModels) == 0 {
		faultModels = []FaultModel{XorFlip}
	}
	var models []Model
	for _, fm := range faultModels {
		candidates := harvestCandidates(fm, cfg.MaxHarvest, out)
		if len(candidates) == 0 {
			continue
		}
		for _, p := range candidates {
			cfg.Events.Emit(obs.EventModelAbstracted, map[string]any{
				"pattern":     hex.EncodeToString(p.Bytes()),
				"bits":        p.Count(),
				"fault_model": fm.String(),
			})
		}
		ms, err := abstraction.Harvest(ctx, modelVerifier{oracle: verifier, model: fm}, candidates, abstraction.HarvestConfig{
			MaxPatterns:    cfg.MaxHarvest,
			ExtendSymmetry: true,
			IsAES:          cfg.Cipher == "aes128",
			GroupBits:      info.GroupBits,
		})
		if err != nil {
			return nil, err
		}
		for i := range ms {
			ms[i].Fault = fm
		}
		models = append(models, ms...)
	}
	for _, m := range models {
		cfg.Events.Emit(obs.EventModelVerified, map[string]any{
			"model":       m.String(),
			"pattern":     hex.EncodeToString(m.Pattern.Bytes()),
			"fault_model": m.Fault.String(),
			"t":           m.T,
		})
	}
	sort.SliceStable(models, func(i, j int) bool {
		if models[i].Class != models[j].Class {
			return models[i].Class < models[j].Class
		}
		return models[i].Pattern.Count() > models[j].Pattern.Count()
	})
	return models, nil
}

// harvestCandidates selects the raw patterns to abstract for one fault
// model: the converged pattern (when it was discovered under fm), the
// most frequent leaky patterns, the largest ones (they carry the
// multi-group structure the frequent small ones miss), and the smallest
// multi-bit ones, whose widenings yield the single-nibble/byte models of
// Table III.
func harvestCandidates(fm FaultModel, maxHarvest int, out *explore.Outcome) []bitvec.Vector {
	var candidates []bitvec.Vector
	seen := map[string]bool{}
	add := func(p bitvec.Vector) {
		if k := p.String(); !seen[k] {
			seen[k] = true
			candidates = append(candidates, p)
		}
	}
	if out.ConvergedLeaky && out.ConvergedModel == fm {
		add(out.Converged)
	}
	taken := 0
	for _, pc := range out.Log.PatternCounts(0) {
		if pc.Model != fm {
			continue
		}
		if taken >= maxHarvest/3 {
			break
		}
		add(pc.Pattern)
		taken++
	}
	var leaky []explore.Record
	for _, r := range out.Log.Leaky(0) {
		if r.Model == fm {
			leaky = append(leaky, r)
		}
	}
	sort.Slice(leaky, func(i, j int) bool { return leaky[i].Distinct > leaky[j].Distinct })
	for i := 0; i < len(leaky) && i < maxHarvest/3; i++ {
		add(leaky[i].Pattern)
	}
	sort.Slice(leaky, func(i, j int) bool { return leaky[i].Distinct < leaky[j].Distinct })
	small := 0
	for _, r := range leaky {
		if r.Distinct < 2 {
			continue
		}
		add(r.Pattern)
		small++
		if small >= maxHarvest/3 {
			break
		}
	}
	return candidates
}
